//! The shared traversal layer: every walk over a decision diagram — node
//! counting, serialization, visualization extraction, basis-state
//! enumeration — goes through the visitors defined here instead of
//! hand-rolling its own stack and seen-set.
//!
//! The walkers are allocation-free after warm-up: they reuse an
//! epoch-stamped [`WalkScratch`] owned by the node store (one `u32` stamp
//! per arena slot, epoch bump per traversal — see
//! [`qdd_complex::VisitSet`]). Because the epoch bump happens *inside* the
//! walker, a forgotten reset between two back-to-back traversals is
//! impossible by construction.
//!
//! # Re-entrancy
//!
//! A walker checks a scratch buffer out of the store's pool for the
//! duration of the traversal. The pool hands every acquisition its own
//! buffer, so callbacks may freely start nested traversals — of either
//! arity, including the same one — and concurrent walks from different
//! threads over a shared package each get independent scratch.

use crate::node::Node;
use crate::types::{Edge, NodeId};
use qdd_complex::ScratchGuard;

/// Tag bit marking a "children done, emit the node" stack entry in the
/// post-order walker. Halves the addressable arena to `2³¹` slots, far
/// beyond what fits in memory.
const EMIT: u32 = 1 << 31;

/// Read-only traversal over the nodes of one diagram kind.
///
/// Implemented by [`DdPackage`](crate::DdPackage) at `N = 2` (vector DDs)
/// and `N = 4` (matrix DDs). The three required methods expose the arena;
/// the provided visitors implement the actual walks exactly once for both
/// kinds.
pub trait Traversable<const N: usize> {
    /// Read access to a node.
    ///
    /// # Panics
    ///
    /// Panics on the terminal sentinel or a foreign/freed id.
    fn node(&self, id: NodeId<N>) -> &Node<N>;

    /// Number of arena slots (visited-set sizing).
    #[doc(hidden)]
    fn arena_len(&self) -> usize;

    /// Checks a traversal scratch buffer out of the store's pool.
    #[doc(hidden)]
    fn walk_scratch(&self) -> ScratchGuard<'_>;

    /// Depth-first pre-order walk: `f` sees every distinct non-terminal
    /// node reachable from `root` exactly once, parents before their
    /// children, children explored in slot order.
    ///
    /// This is the order the serializer pins: root first, then the
    /// slot-`0` subtree interleaved per the explicit-stack DFS.
    fn visit_preorder(&self, root: Edge<N>, mut f: impl FnMut(NodeId<N>, &Node<N>)) {
        if root.is_terminal() {
            return;
        }
        let mut s = self.walk_scratch();
        s.begin(self.arena_len());
        s.stack.push(root.node.raw());
        while let Some(i) = s.stack.pop() {
            if !s.set.visit(i as usize) {
                continue;
            }
            let id = NodeId::<N>::from_index(i as usize);
            let n = self.node(id);
            f(id, n);
            for c in n.children {
                if !c.is_terminal() {
                    s.stack.push(c.node.raw());
                }
            }
        }
    }

    /// Breadth-first walk: `f` sees every distinct non-terminal node
    /// reachable from `root` exactly once, level by level, siblings in
    /// slot order (the order the visualization layer displays).
    fn visit_bfs(&self, root: Edge<N>, mut f: impl FnMut(NodeId<N>, &Node<N>)) {
        if root.is_terminal() {
            return;
        }
        let mut s = self.walk_scratch();
        s.begin(self.arena_len());
        s.set.visit(root.node.index());
        s.stack.push(root.node.raw());
        let mut cursor = 0;
        while cursor < s.stack.len() {
            let i = s.stack[cursor];
            cursor += 1;
            let id = NodeId::<N>::from_index(i as usize);
            let n = self.node(id);
            f(id, n);
            for c in n.children {
                if !c.is_terminal() && s.set.visit(c.node.index()) {
                    s.stack.push(c.node.raw());
                }
            }
        }
    }

    /// Depth-first post-order walk: `f` sees every distinct non-terminal
    /// node exactly once, all children strictly before their parent — the
    /// order bottom-up dynamic programming over a diagram wants.
    fn visit_postorder(&self, root: Edge<N>, mut f: impl FnMut(NodeId<N>, &Node<N>)) {
        if root.is_terminal() {
            return;
        }
        debug_assert!((self.arena_len() as u64) < EMIT as u64);
        let mut s = self.walk_scratch();
        s.begin(self.arena_len());
        s.stack.push(root.node.raw());
        while let Some(x) = s.stack.pop() {
            if x & EMIT != 0 {
                let id = NodeId::<N>::from_index((x & !EMIT) as usize);
                f(id, self.node(id));
                continue;
            }
            if !s.set.visit(x as usize) {
                continue;
            }
            s.stack.push(x | EMIT);
            for c in self.node(NodeId::<N>::from_index(x as usize)).children {
                if !c.is_terminal() && !s.set.seen(c.node.index()) {
                    s.stack.push(c.node.raw());
                }
            }
        }
    }

    /// The number of distinct nodes reachable from `root`, excluding the
    /// terminal (the size measure used throughout the paper, e.g. Ex. 6).
    ///
    /// Allocation-free after warm-up, so drivers may call this per
    /// simulation step.
    fn count_reachable(&self, root: Edge<N>) -> usize {
        let mut count = 0usize;
        self.visit_preorder(root, |_, _| count += 1);
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DdPackage, MatEdge, VecEdge};

    #[test]
    fn preorder_visits_parent_before_children() {
        let mut dd = DdPackage::new();
        let e = dd.zero_state(3).unwrap();
        let mut vars = Vec::new();
        dd.visit_preorder(e, |_, n| vars.push(n.var));
        assert_eq!(vars, vec![2, 1, 0]);
    }

    #[test]
    fn postorder_visits_children_before_parent() {
        let mut dd = DdPackage::new();
        let e = dd.zero_state(3).unwrap();
        let mut vars = Vec::new();
        dd.visit_postorder(e, |_, n| vars.push(n.var));
        assert_eq!(vars, vec![0, 1, 2]);
    }

    #[test]
    fn bfs_visits_level_by_level() {
        let mut dd = DdPackage::new();
        // GHZ-like sharing: two distinct q0 nodes below one q1 node.
        let a = dd.basis_state(2, 0).unwrap();
        let b = dd.basis_state(2, 3).unwrap();
        let e = dd.add_vec(a, b);
        let mut vars = Vec::new();
        dd.visit_bfs(e, |_, n| vars.push(n.var));
        assert_eq!(vars, vec![1, 0, 0]);
    }

    #[test]
    fn shared_nodes_are_visited_once() {
        let mut dd = DdPackage::new();
        // H ⊗ H: all four children of the root are the same H node.
        let h1 = dd.gate_dd(crate::gates::H, &[], 1, 2).unwrap();
        let h0 = dd.gate_dd(crate::gates::H, &[], 0, 2).unwrap();
        let hh = dd.mat_mat(h1, h0);
        let mut count = 0;
        dd.visit_postorder(hh, |_, _| count += 1);
        // One root plus one shared H node — not four H copies.
        assert_eq!(count, 2, "the shared H node is visited once");
    }

    #[test]
    fn terminal_roots_visit_nothing() {
        let dd = DdPackage::new();
        let mut hits = 0;
        dd.visit_preorder(VecEdge::ZERO, |_, _| hits += 1);
        dd.visit_bfs(VecEdge::ONE, |_, _| hits += 1);
        dd.visit_postorder(MatEdge::ONE, |_, _| hits += 1);
        assert_eq!(hits, 0);
        assert_eq!(dd.count_reachable(VecEdge::ZERO), 0);
    }

    #[test]
    fn vector_and_matrix_walks_can_nest() {
        // Each store owns its own scratch pool, so cross-arity nesting is
        // fine.
        let mut dd = DdPackage::new();
        let v = dd.zero_state(2).unwrap();
        let m = dd
            .gate_dd(crate::gates::X, &[crate::Control::pos(1)], 0, 2)
            .unwrap();
        let mut pairs = 0;
        dd.visit_preorder(v, |_, _| {
            dd.visit_preorder(m, |_, _| pairs += 1);
        });
        assert_eq!(pairs, 4);
    }

    #[test]
    fn same_arity_walks_can_nest() {
        // The scratch pool hands each nested walk its own buffer, so even
        // same-arity re-entrancy works (it used to panic via RefCell).
        let mut dd = DdPackage::new();
        let v = dd.zero_state(3).unwrap();
        let mut pairs = 0;
        dd.visit_preorder(v, |_, _| {
            dd.visit_preorder(v, |_, _| pairs += 1);
        });
        assert_eq!(pairs, 9);
    }
}
