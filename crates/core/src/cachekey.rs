//! Stable cache-key plumbing for compiled-circuit caches.
//!
//! A server reusing frozen warm bases across requests (`qdd-serve`) needs a
//! key that changes exactly when the compiled artifact would: the circuit
//! source and the *structural* package configuration (tolerance,
//! normalization rule, identity-skipping, …). Resource [`Limits`] are
//! deliberately excluded — they govern *how much* a request may spend, not
//! what any diagram looks like, and warm bases are built with default
//! limits precisely so they can serve requests with any budget.
//!
//! [`Limits`]: crate::Limits

use crate::package::PackageConfig;
use crate::normalize::VectorNormalization;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte string: the workspace's one deterministic,
/// dependency-free content hash for cache keys (QASM sources, config
/// fingerprints). Not cryptographic — so any cache serving results by this
/// key alone would conflate colliding inputs. Callers keying shared state
/// off this hash must verify the stored source on lookup (as
/// `qdd_serve::cache` does), making a collision cost a rebuild instead of
/// a wrong answer.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds a 64-bit word into an FNV-1a state (little-endian bytes).
fn fnv1a_fold(h: u64, word: u64) -> u64 {
    let mut h = h;
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl PackageConfig {
    /// A stable fingerprint of the configuration knobs that shape diagram
    /// *structure*. Two configs with the same structural key build
    /// bit-identical warm bases from the same circuit; [`Limits`] fields
    /// are excluded (see module docs).
    ///
    /// [`Limits`]: crate::Limits
    pub fn structural_key(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv1a_fold(h, self.tolerance.to_bits());
        h = fnv1a_fold(h, u64::from(self.compute_tables));
        h = fnv1a_fold(h, u64::from(self.check_unitarity));
        h = fnv1a_fold(
            h,
            match self.vector_normalization {
                VectorNormalization::L2 => 0,
                VectorNormalization::MaxMagnitude => 1,
            },
        );
        h = fnv1a_fold(h, u64::from(self.identity_skip));
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Limits;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn structural_key_ignores_limits_but_sees_structure() {
        let base = PackageConfig::default();
        let budgeted = PackageConfig {
            limits: Limits {
                max_nodes: Some(10),
                deadline: Some(std::time::Duration::from_millis(5)),
                ..Limits::default()
            },
            ..base
        };
        assert_eq!(base.structural_key(), budgeted.structural_key());
        let no_skip = PackageConfig {
            identity_skip: false,
            ..base
        };
        assert_ne!(base.structural_key(), no_skip.structural_key());
        let loose = PackageConfig {
            tolerance: base.tolerance * 2.0,
            ..base
        };
        assert_ne!(base.structural_key(), loose.structural_key());
    }
}
