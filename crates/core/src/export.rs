//! Dense export and amplitude queries — the bridge between diagrams and the
//! exponential representations they compress.

use crate::package::DdPackage;
use crate::types::{MatEdge, VecEdge};
use qdd_complex::Complex;

/// Largest register `to_dense_vector` materializes (2²⁴ amplitudes ≈ 256 MiB).
const MAX_DENSE_VECTOR_QUBITS: usize = 24;
/// Largest register `to_dense_matrix` materializes (4¹² entries ≈ 256 MiB).
const MAX_DENSE_MATRIX_QUBITS: usize = 12;

impl DdPackage {
    /// The amplitude `⟨basis|state⟩` of one computational basis state —
    /// a single root→terminal walk multiplying edge weights (paper §III-A).
    pub fn amplitude(&self, state: VecEdge, basis: u64) -> Complex {
        let mut w = self.complex_value(state.weight);
        let mut node = state.node;
        while !node.is_terminal() {
            if w == Complex::ZERO {
                return Complex::ZERO;
            }
            let n = self.vnode(node);
            let bit = (basis >> n.var) & 1;
            let child = n.children[bit as usize];
            w *= self.complex_value(child.weight);
            node = child.node;
        }
        w
    }

    /// One entry `⟨row| U |col⟩` of an operator DD.
    pub fn matrix_entry(&self, m: MatEdge, row: u64, col: u64) -> Complex {
        let mut w = self.complex_value(m.weight);
        let mut node = m.node;
        // Levels the walk actually branched on; every other level is a
        // skipped identity, where off-diagonal entries vanish.
        let mut consumed: u64 = 0;
        while !node.is_terminal() {
            if w == Complex::ZERO {
                return Complex::ZERO;
            }
            let n = self.mnode(node);
            consumed |= 1u64 << n.var;
            let i = (row >> n.var) & 1;
            let j = (col >> n.var) & 1;
            let child = n.children[(2 * i + j) as usize];
            w *= self.complex_value(child.weight);
            node = child.node;
        }
        if (row ^ col) & !consumed != 0 {
            return Complex::ZERO;
        }
        w
    }

    /// [`Self::to_dense_vector`] with the qubit cap as a typed error instead
    /// of a panic — checked *before* any allocation, so a driver probing the
    /// dense fallback on a wide register fails structurally rather than
    /// attempting a doomed `2ⁿ` buffer.
    ///
    /// # Errors
    ///
    /// [`DdError::TooLargeForDense`](crate::DdError::TooLargeForDense) when
    /// `n` exceeds 24 qubits.
    pub fn try_to_dense_vector(
        &self,
        state: VecEdge,
        n: usize,
    ) -> Result<Vec<Complex>, crate::DdError> {
        if n > MAX_DENSE_VECTOR_QUBITS {
            return Err(crate::DdError::TooLargeForDense {
                num_qubits: n,
                max: MAX_DENSE_VECTOR_QUBITS,
            });
        }
        Ok(self.to_dense_vector(state, n))
    }

    /// Materializes the full `2ⁿ` state vector.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds 24 qubits or does not cover the diagram.
    pub fn to_dense_vector(&self, state: VecEdge, n: usize) -> Vec<Complex> {
        assert!(
            n <= MAX_DENSE_VECTOR_QUBITS,
            "dense vector export limited to {MAX_DENSE_VECTOR_QUBITS} qubits"
        );
        if let Some(v) = self.vec_var(state) {
            assert!(
                (v as usize) < n,
                "state spans more qubits than requested: {} > {n}",
                v as usize + 1
            );
        }
        let mut out = vec![Complex::ZERO; 1 << n];
        fn fill(
            dd: &DdPackage,
            e: VecEdge,
            w: Complex,
            out: &mut [Complex],
        ) {
            if e.is_zero() {
                return;
            }
            let w = w * dd.complex_value(e.weight);
            if e.is_terminal() {
                debug_assert_eq!(out.len(), 1);
                out[0] = w;
                return;
            }
            let n = dd.vnode(e.node);
            let half = out.len() / 2;
            // If the state has fewer qubits than requested, the upper half
            // stays zero only when the top variable is below n-1; in a
            // well-formed full-span state this split is always exact.
            debug_assert_eq!(half, 1 << n.var);
            let (lo, hi) = out.split_at_mut(half);
            fill(dd, n.children[0], w, lo);
            fill(dd, n.children[1], w, hi);
        }
        fill(self, state, Complex::ONE, &mut out);
        out
    }

    /// Materializes the full `2ⁿ×2ⁿ` operator matrix (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds 12 qubits or does not cover the diagram.
    pub fn to_dense_matrix(&self, m: MatEdge, n: usize) -> Vec<Vec<Complex>> {
        assert!(
            n <= MAX_DENSE_MATRIX_QUBITS,
            "dense matrix export limited to {MAX_DENSE_MATRIX_QUBITS} qubits"
        );
        if let Some(v) = self.mat_var(m) {
            assert!(
                (v as usize) < n,
                "operator spans more qubits than requested: {} > {n}",
                v as usize + 1
            );
        }
        let dim = 1usize << n;
        let mut out = vec![vec![Complex::ZERO; dim]; dim];
        fn fill(
            dd: &DdPackage,
            e: MatEdge,
            w: Complex,
            out: &mut [Vec<Complex>],
            r0: usize,
            c0: usize,
            dim: usize,
        ) {
            if e.is_zero() {
                return;
            }
            let w = w * dd.complex_value(e.weight);
            fill_node(dd, e, w, out, r0, c0, dim);
        }
        // Weight already folded in; places `node`'s block (or its identity
        // expansion over skipped levels) into the `dim×dim` region.
        fn fill_node(
            dd: &DdPackage,
            e: MatEdge,
            w: Complex,
            out: &mut [Vec<Complex>],
            r0: usize,
            c0: usize,
            dim: usize,
        ) {
            if e.is_terminal() {
                // Identity skip: a terminal is `w·I` on the whole block.
                for k in 0..dim {
                    out[r0 + k][c0 + k] = w;
                }
                return;
            }
            let n = dd.mnode(e.node);
            let h = dim / 2;
            if (1usize << n.var) < h {
                // Skipped identity level: replicate down the diagonal.
                fill_node(dd, e, w, out, r0, c0, h);
                fill_node(dd, e, w, out, r0 + h, c0 + h, h);
                return;
            }
            debug_assert_eq!(h, 1 << n.var);
            fill(dd, n.children[0], w, out, r0, c0, h);
            fill(dd, n.children[1], w, out, r0, c0 + h, h);
            fill(dd, n.children[2], w, out, r0 + h, c0, h);
            fill(dd, n.children[3], w, out, r0 + h, c0 + h, h);
        }
        fill(self, m, Complex::ONE, &mut out, 0, 0, dim);
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{gates, Control, DdPackage};
    use qdd_complex::Complex;
    use std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn amplitude_walks_match_dense_export() {
        let mut dd = DdPackage::new();
        let mut s = dd.zero_state(3).unwrap();
        s = dd.apply_gate(s, gates::H, &[], 2).unwrap();
        s = dd.apply_gate(s, gates::t(), &[], 2).unwrap();
        s = dd.apply_gate(s, gates::X, &[Control::pos(2)], 0).unwrap();
        let dense = dd.to_dense_vector(s, 3);
        for basis in 0..8u64 {
            assert!(dd
                .amplitude(s, basis)
                .approx_eq(dense[basis as usize], 1e-12));
        }
    }

    #[test]
    fn dense_round_trip_via_from_amplitudes() {
        let mut dd = DdPackage::new();
        let amps: Vec<Complex> = (0..8)
            .map(|i| Complex::new(0.1 * i as f64 + 0.05, -0.07 * i as f64))
            .collect();
        let s = dd.state_from_amplitudes(&amps).unwrap();
        let dense = dd.to_dense_vector(s, 3);
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        for i in 0..8 {
            assert!(dense[i].approx_eq(amps[i] / norm, 1e-12), "entry {i}");
        }
    }

    #[test]
    fn cnot_matrix_matches_fig_1b() {
        let mut dd = DdPackage::new();
        let cx = dd.gate_dd(gates::X, &[Control::pos(1)], 0, 2).unwrap();
        let m = dd.to_dense_matrix(cx, 2);
        let o = Complex::ONE;
        let z = Complex::ZERO;
        let want = [
            [o, z, z, z],
            [z, o, z, z],
            [z, z, z, o],
            [z, z, o, z],
        ];
        for i in 0..4 {
            for j in 0..4 {
                assert!(m[i][j].approx_eq(want[i][j], 1e-12), "({i},{j})");
            }
        }
    }

    #[test]
    fn hadamard_tensor_identity_matches_example_3() {
        let mut dd = DdPackage::new();
        let hi = dd.gate_dd(gates::H, &[], 1, 2).unwrap();
        let m = dd.to_dense_matrix(hi, 2);
        let h = FRAC_1_SQRT_2;
        for (i, row) in m.iter().enumerate() {
            for (j, &entry) in row.iter().enumerate() {
                // H ⊗ I entries
                let want = if i % 2 == j % 2 {
                    let hv = [[h, h], [h, -h]][i / 2][j / 2];
                    Complex::real(hv)
                } else {
                    Complex::ZERO
                };
                assert!(entry.approx_eq(want, 1e-12), "({i},{j})");
            }
        }
    }

    #[test]
    fn matrix_entry_matches_dense() {
        let mut dd = DdPackage::new();
        let g = dd.gate_dd(gates::S, &[Control::pos(0)], 1, 2).unwrap();
        let m = dd.to_dense_matrix(g, 2);
        for r in 0..4u64 {
            for c in 0..4u64 {
                assert!(dd
                    .matrix_entry(g, r, c)
                    .approx_eq(m[r as usize][c as usize], 1e-12));
            }
        }
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn dense_vector_guard() {
        let dd = DdPackage::new();
        let _ = dd.to_dense_vector(crate::VecEdge::ZERO, 30);
    }
}
