//! Fidelity-bounded state approximation — the degradation rung between
//! pressure-GC and dense fallback.
//!
//! The paper's premise is that diagram *size*, not qubit count, is the real
//! resource; "Approximation of Quantum States Using Decision Diagrams"
//! (Zulehner, Hillmich, Wille — arXiv 2002.04904) adds the missing escape
//! hatch when that size blows a budget: prune the parts of the state that
//! carry the least probability mass, for an exponential size reduction at a
//! *bounded, measurable* fidelity cost. This module implements both of the
//! paper's strategies over the vector store:
//!
//! * **Fidelity-budget pruning** ([`DdPackage::prune_to_fidelity`]) — a
//!   one-shot pass that computes every reachable node's contribution (the
//!   total `|amplitude|²` mass routed through it), then removes the cheapest
//!   subtrees until the removed mass reaches the budget `1 − f_min`,
//!   renormalizing the root.
//! * **Threshold contraction** ([`DdPackage::contract_threshold`]) — zeroes
//!   every edge whose contribution falls below `ε`; cheap enough to run
//!   incrementally between applies.
//!
//! # Soundness of the bound
//!
//! Under [`VectorNormalization::L2`](crate::VectorNormalization::L2) every
//! node's sub-vector has unit norm, so the mass routed through a node equals
//! its *contribution*: the sum over root→node path prefixes of the squared
//! prefix-weight products. Each computational basis state follows exactly
//! one root→terminal path, so pruning a node (or zeroing an edge) deletes
//! the amplitudes of a *disjoint* set of basis states — an orthogonal
//! component of the state whose total mass is at most the summed
//! contributions of everything pruned. Selection therefore budgets against
//! that Σ (conservative: nested prunes double-count), while the
//! [`ApproxReport::fidelity_lower_bound`] both entry points report is read
//! off the rebuilt state's norm, which measures the removed mass *exactly*:
//! `|⟨ψ|ψ̃⟩|² = 1 − removed mass = (‖ψ̃‖/‖ψ‖)²` for the renormalized `ψ̃`.

use crate::error::DdError;
use crate::package::DdPackage;
use crate::traverse::Traversable;
use crate::types::{Qubit, VecEdge};
use qdd_complex::{Complex, FxHashMap};

/// What one approximation pass did to the state.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ApproxReport {
    /// Sound lower bound on `|⟨ψ|ψ̃⟩|²` between the original and the pruned,
    /// renormalized state. `1.0` when the pass was a no-op.
    pub fidelity_lower_bound: f64,
    /// Reachable nodes of the state before the pass.
    pub nodes_before: usize,
    /// Reachable nodes of the returned state.
    pub nodes_after: usize,
    /// Conservative total `|amplitude|²` mass removed (the Σ the bound is
    /// derived from; the mass actually lost never exceeds it).
    pub removed_mass: f64,
    /// Pruning rounds this report covers: `1` for a pass that changed the
    /// state, `0` for a no-op. Drivers accumulate reports across rounds.
    pub rounds: usize,
}

impl ApproxReport {
    /// A report for a pass that left `state` untouched.
    fn noop(nodes: usize) -> Self {
        ApproxReport {
            fidelity_lower_bound: 1.0,
            nodes_before: nodes,
            nodes_after: nodes,
            removed_mass: 0.0,
            rounds: 0,
        }
    }

    /// Nodes shed by the pass.
    pub fn nodes_removed(&self) -> usize {
        self.nodes_before.saturating_sub(self.nodes_after)
    }
}

/// Decides what an edge of the original diagram becomes in the rebuilt one.
enum EdgeFate {
    Keep,
    Zero,
}

impl DdPackage {
    /// One-shot fidelity-budget pruning: removes the lowest-contribution
    /// subtrees of `state` until the removed mass would exceed
    /// `1 − min_fidelity`, then renormalizes. The returned state has the
    /// same norm as the input and satisfies
    /// `|⟨state|returned⟩|² ≥ fidelity_lower_bound ≥ min_fidelity`.
    ///
    /// `min_fidelity = 1.0` (or anything above) is a structural no-op: the
    /// input edge is returned bit-identically.
    ///
    /// # Errors
    ///
    /// [`DdError::ResourceExhausted`] when rebuilding the pruned diagram
    /// itself runs out of node budget (callers under pressure should GC and
    /// fall through to their next degradation rung).
    ///
    /// # Panics
    ///
    /// Panics unless the package uses
    /// [`VectorNormalization::L2`](crate::VectorNormalization::L2) — node
    /// contributions are only probability masses under the L2 rule.
    pub fn prune_to_fidelity(
        &mut self,
        state: VecEdge,
        min_fidelity: f64,
    ) -> Result<(VecEdge, ApproxReport), DdError> {
        self.prune_to_node_target(state, min_fidelity, None)
    }

    /// [`Self::prune_to_fidelity`] with an early stop: selection ends as
    /// soon as the projected reachable-node count drops to `node_target`,
    /// even if fidelity budget remains — so a driver pruning in rounds can
    /// spread one cumulative budget across several pressure events instead
    /// of spending it all on the first.
    ///
    /// # Errors
    ///
    /// As [`Self::prune_to_fidelity`].
    pub fn prune_to_node_target(
        &mut self,
        state: VecEdge,
        min_fidelity: f64,
        node_target: Option<usize>,
    ) -> Result<(VecEdge, ApproxReport), DdError> {
        let nodes_before = self.vec_node_count(state);
        // Clamp to (0, 1]: a budget of 1 could legally delete every path.
        let budget = (1.0 - min_fidelity).min(1.0 - 1e-9);
        if state.is_terminal() || budget <= 0.0 {
            return Ok((state, ApproxReport::noop(nodes_before)));
        }
        let span = qdd_telemetry::span("core.approx");
        let contribution = self.vec_contributions(state);

        // Cheapest-first greedy selection of whole nodes. The root is never
        // a candidate (its contribution is 1), so the pruned state cannot
        // vanish: removed mass ≤ budget < 1 leaves surviving paths.
        let mut candidates: Vec<(u32, f64)> = contribution
            .iter()
            .filter(|&(&raw, _)| raw != state.node.raw())
            .map(|(&raw, &c)| (raw, c))
            .collect();
        candidates.sort_unstable_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut removed: FxHashMap<u32, ()> = FxHashMap::default();
        let mut removed_mass = 0.0f64;
        for (raw, c) in candidates {
            if let Some(target) = node_target {
                if nodes_before - removed.len() <= target {
                    break;
                }
            }
            if removed_mass + c > budget {
                // Sorted ascending: nothing further fits either.
                break;
            }
            removed_mass += c;
            removed.insert(raw, ());
        }
        if removed.is_empty() {
            drop(span);
            return Ok((state, ApproxReport::noop(nodes_before)));
        }
        let rebuilt =
            self.rebuild_pruned(state, |parent, _slot, child| match child {
                Some(raw) if removed.contains_key(&raw) => EdgeFate::Zero,
                _ if removed.contains_key(&parent) => EdgeFate::Zero,
                _ => EdgeFate::Keep,
            })?;
        let report = self.finish_report(state, rebuilt, nodes_before, removed_mass);
        Ok(report)
    }

    /// Threshold contraction: zeroes every edge whose contribution — the
    /// mass of the basis states routed through it — falls below `epsilon`,
    /// then renormalizes. Cheap enough to repeat between applies; the
    /// removed mass (and hence the fidelity loss) is bounded by the summed
    /// contributions of the zeroed edges and reported exactly like
    /// [`Self::prune_to_fidelity`].
    ///
    /// # Errors
    ///
    /// [`DdError::ZeroVector`] when `epsilon` is large enough to zero every
    /// surviving path (choose `epsilon < 0.5` to make the root always keep
    /// its heavier branch), and [`DdError::ResourceExhausted`] as for
    /// [`Self::prune_to_fidelity`].
    ///
    /// # Panics
    ///
    /// Panics unless the package uses
    /// [`VectorNormalization::L2`](crate::VectorNormalization::L2).
    pub fn contract_threshold(
        &mut self,
        state: VecEdge,
        epsilon: f64,
    ) -> Result<(VecEdge, ApproxReport), DdError> {
        let nodes_before = self.vec_node_count(state);
        if state.is_terminal() || epsilon <= 0.0 {
            return Ok((state, ApproxReport::noop(nodes_before)));
        }
        let _span = qdd_telemetry::span("core.approx");
        let contribution = self.vec_contributions(state);

        // Collect doomed edges first (with their masses), then rebuild.
        let mut removed_mass = 0.0f64;
        let mut zeroed: FxHashMap<(u32, usize), ()> = FxHashMap::default();
        self.visit_preorder(state, |id, n| {
            let parent_mass = contribution[&id.raw()];
            for (slot, c) in n.children.iter().enumerate() {
                if c.is_zero() {
                    continue;
                }
                let mass = parent_mass * self.complex_value(c.weight).norm_sqr();
                if mass < epsilon {
                    removed_mass += mass;
                    zeroed.insert((id.raw(), slot), ());
                }
            }
        });
        if zeroed.is_empty() {
            return Ok((state, ApproxReport::noop(nodes_before)));
        }
        let rebuilt = self.rebuild_pruned(state, |parent, slot, _child| {
            if zeroed.contains_key(&(parent, slot)) {
                EdgeFate::Zero
            } else {
                EdgeFate::Keep
            }
        })?;
        if rebuilt.is_zero() {
            return Err(DdError::ZeroVector);
        }
        let report = self.finish_report(state, rebuilt, nodes_before, removed_mass);
        Ok(report)
    }

    /// Top-down contribution pass: for every reachable node, the total
    /// probability mass of the basis states routed through it, as a fraction
    /// of the state's own norm² (the root maps to 1.0).
    ///
    /// The diagram is strictly leveled (children sit exactly one variable
    /// down), so a BFS visits every parent before any child and each node's
    /// accumulated sum is final when its own edges are expanded.
    fn vec_contributions(&self, state: VecEdge) -> FxHashMap<u32, f64> {
        assert!(
            self.config.vector_normalization == crate::normalize::VectorNormalization::L2,
            "approximation requires VectorNormalization::L2 (the ablation \
             rule does not keep local weights as probability amplitudes)"
        );
        let mut contribution: FxHashMap<u32, f64> = FxHashMap::default();
        contribution.insert(state.node.raw(), 1.0);
        self.visit_bfs(state, |id, n| {
            let mass = contribution[&id.raw()];
            for c in &n.children {
                if c.is_zero() || c.is_terminal() {
                    continue;
                }
                let w = self.complex_value(c.weight).norm_sqr();
                *contribution.entry(c.node.raw()).or_insert(0.0) += mass * w;
            }
        });
        contribution
    }

    /// Rebuilds `state` bottom-up, replacing each edge `fate` dooms with the
    /// zero stub. Nodes whose children all vanish collapse to zero stubs in
    /// their parents (canonical construction handles the cascade). The
    /// returned edge is *not* renormalized.
    ///
    /// The rebuild allocates with the node budget bypassed: pruning is the
    /// *response* to an exhausted allocator, so it must be able to run while
    /// the allocator is exhausted. Most rebuilt nodes dedupe onto existing
    /// ones; the overshoot is transient (bounded by the reachable set being
    /// shrunk) and callers collect garbage right after adopting the result.
    fn rebuild_pruned(
        &mut self,
        state: VecEdge,
        fate: impl Fn(u32, usize, Option<u32>) -> EdgeFate,
    ) -> Result<VecEdge, DdError> {
        let mut order: Vec<(u32, Qubit, [VecEdge; 2])> = Vec::new();
        self.visit_postorder(state, |id, n| order.push((id.raw(), n.var, n.children)));
        let mut rebuilt: FxHashMap<u32, VecEdge> = FxHashMap::default();
        self.budget_bypass = true;
        let mut outcome = Ok(());
        'rebuild: for (raw, var, children) in order {
            let mut new_children = [VecEdge::ZERO; 2];
            for (slot, c) in children.into_iter().enumerate() {
                if c.is_zero() {
                    continue;
                }
                let child_raw = (!c.is_terminal()).then(|| c.node.raw());
                if matches!(fate(raw, slot, child_raw), EdgeFate::Zero) {
                    continue;
                }
                new_children[slot] = match child_raw {
                    None => c,
                    Some(cr) => match rebuilt.get(&cr) {
                        // Child pruned as a whole node (or fully vanished).
                        None => VecEdge::ZERO,
                        Some(&sub) => self.scale_vec(sub, c.weight),
                    },
                };
            }
            match self.try_make_vec_node(var, new_children) {
                Ok(e) if !e.is_zero() => {
                    rebuilt.insert(raw, e);
                }
                Ok(_) => {}
                Err(e) => {
                    outcome = Err(e);
                    break 'rebuild;
                }
            }
        }
        self.budget_bypass = false;
        outcome?;
        Ok(match rebuilt.get(&state.node.raw()) {
            None => VecEdge::ZERO,
            Some(&root) => self.scale_vec(root, state.weight),
        })
    }

    /// Renormalizes the rebuilt state to the original norm and assembles the
    /// report.
    ///
    /// The reported bound comes from the rebuilt norm, not from the
    /// selection's Σ of contributions: pruning deletes a set of complete
    /// root→terminal paths, i.e. an *orthogonal* component of the state, so
    /// `(‖ψ̃‖/‖ψ‖)²` equals `|⟨ψ|ψ̃⟩|²` exactly (up to float rounding). The
    /// Σ overcounts whenever a selected node sits under another selected
    /// node — good enough to keep the greedy selection conservative,
    /// hopeless as an account balance: drivers that track a cumulative
    /// budget across rounds would book mass that was never actually spent.
    fn finish_report(
        &mut self,
        original: VecEdge,
        rebuilt: VecEdge,
        nodes_before: usize,
        removed_mass: f64,
    ) -> (VecEdge, ApproxReport) {
        debug_assert!(!rebuilt.is_zero(), "pruning must leave surviving paths");
        // Under L2 the root weight's magnitude *is* the state's norm.
        let norm_before = self.complex_value(original.weight).abs();
        let norm_after = self.complex_value(rebuilt.weight).abs();
        let ratio = if norm_before > 0.0 {
            (norm_after / norm_before).powi(2)
        } else {
            1.0
        };
        let bound = ratio.clamp(0.0, 1.0);
        let factor = self.intern(Complex::real(norm_before / norm_after));
        let renormalized = self.scale_vec(rebuilt, factor);
        let nodes_after = self.vec_node_count(renormalized);
        qdd_telemetry::emit("core.approx")
            .field("nodes_before", nodes_before)
            .field("nodes_after", nodes_after)
            .field("fidelity_lower_bound", bound);
        (
            renormalized,
            ApproxReport {
                fidelity_lower_bound: bound,
                nodes_before,
                nodes_after,
                removed_mass,
                rounds: 1,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    /// An entangled, non-uniform 6-qubit state with a spread of node
    /// contributions.
    fn lopsided_state(dd: &mut DdPackage) -> VecEdge {
        let mut s = dd.zero_state(6).unwrap();
        for q in 0..6 {
            s = dd
                .apply_gate(s, gates::ry(0.3 + 0.37 * q as f64), &[], q)
                .unwrap();
        }
        for q in 0..5 {
            s = dd
                .apply_gate(s, gates::X, &[crate::Control::pos(q)], q + 1)
                .unwrap();
        }
        for q in 0..6 {
            s = dd
                .apply_gate(s, gates::rz(0.1 + 0.2 * q as f64), &[], q)
                .unwrap();
        }
        s
    }

    #[test]
    fn min_fidelity_one_is_bit_identical_noop() {
        let mut dd = DdPackage::new();
        let s = lopsided_state(&mut dd);
        let (pruned, report) = dd.prune_to_fidelity(s, 1.0).unwrap();
        assert_eq!(pruned, s, "f_min = 1 must return the exact same edge");
        assert_eq!(report.fidelity_lower_bound, 1.0);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.nodes_before, report.nodes_after);
    }

    #[test]
    fn pruning_respects_the_budget_and_shrinks() {
        let mut dd = DdPackage::new();
        let s = lopsided_state(&mut dd);
        dd.inc_ref_vec(s);
        let (pruned, report) = dd.prune_to_fidelity(s, 0.8).unwrap();
        assert!(report.nodes_after < report.nodes_before, "{report:?}");
        assert!(report.fidelity_lower_bound >= 0.8, "{report:?}");
        // The bound never overstates the true fidelity.
        let exact = dd.fidelity(s, pruned);
        assert!(
            report.fidelity_lower_bound <= exact + 1e-9,
            "bound {} exceeds exact fidelity {exact}",
            report.fidelity_lower_bound
        );
        // Pruned states stay normalized.
        assert!((dd.vec_norm(pruned) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn node_target_stops_early_and_preserves_budget() {
        let mut dd = DdPackage::new();
        let s = lopsided_state(&mut dd);
        let nodes = dd.vec_node_count(s);
        let (_, unbounded) = dd.prune_to_fidelity(s, 0.5).unwrap();
        let (_, targeted) = dd
            .prune_to_node_target(s, 0.5, Some(nodes - 1))
            .unwrap();
        assert!(targeted.removed_mass <= unbounded.removed_mass);
        assert!(targeted.fidelity_lower_bound >= unbounded.fidelity_lower_bound);
    }

    #[test]
    fn threshold_contraction_zeroes_small_edges() {
        let mut dd = DdPackage::new();
        let s = lopsided_state(&mut dd);
        dd.inc_ref_vec(s);
        let (contracted, report) = dd.contract_threshold(s, 0.02).unwrap();
        assert!(report.nodes_after <= report.nodes_before);
        let exact = dd.fidelity(s, contracted);
        assert!(
            report.fidelity_lower_bound <= exact + 1e-9,
            "bound {} exceeds exact fidelity {exact}",
            report.fidelity_lower_bound
        );
        assert!((dd.vec_norm(contracted) - 1.0).abs() < 1e-9);
        // A threshold below every edge mass is a no-op.
        let (same, noop) = dd.contract_threshold(s, 1e-30).unwrap();
        assert_eq!(same, s);
        assert_eq!(noop.rounds, 0);
    }

    #[test]
    fn overeager_threshold_reports_zero_vector() {
        let mut dd = DdPackage::new();
        let mut s = dd.zero_state(3).unwrap();
        for q in 0..3 {
            s = dd.apply_gate(s, gates::H, &[], q).unwrap();
        }
        // Uniform state: every edge mass < 0.9, so everything vanishes.
        assert!(matches!(
            dd.contract_threshold(s, 0.9),
            Err(DdError::ZeroVector)
        ));
    }

    #[test]
    fn basis_state_survives_any_budget() {
        let mut dd = DdPackage::new();
        let s = dd.basis_state(5, 0b10110).unwrap();
        let (pruned, report) = dd.prune_to_fidelity(s, 0.01).unwrap();
        // A basis state routes all mass down one path: nothing is cheap
        // enough to prune within a budget < 1.
        assert_eq!(pruned, s);
        assert_eq!(report.fidelity_lower_bound, 1.0);
    }

    #[test]
    fn pruned_amplitudes_are_a_masked_rescale() {
        let mut dd = DdPackage::new();
        let s = lopsided_state(&mut dd);
        dd.inc_ref_vec(s);
        let before = dd.to_dense_vector(s, 6);
        let (pruned, _) = dd.prune_to_fidelity(s, 0.7).unwrap();
        let after = dd.to_dense_vector(pruned, 6);
        // Each surviving amplitude is the original scaled by one global
        // positive factor; removed ones are exactly zero.
        let scale = after
            .iter()
            .zip(&before)
            .find(|(a, _)| a.norm_sqr() > 1e-18)
            .map(|(a, b)| (a.norm_sqr() / b.norm_sqr()).sqrt())
            .expect("a pruned state keeps at least one amplitude");
        assert!(scale >= 1.0, "renormalization must boost survivors");
        for (a, b) in after.iter().zip(&before) {
            if a.norm_sqr() <= 1e-18 {
                continue;
            }
            assert!(
                a.approx_eq(*b * Complex::real(scale), 1e-9),
                "surviving amplitude not a uniform rescale: {a:?} vs {b:?}"
            );
        }
    }
}
