//! Error type for fallible package operations.

use std::error::Error;
use std::fmt;

/// Errors returned by the public, user-input-driven package API.
///
/// Internal invariant violations (malformed diagrams produced by the package
/// itself) are bugs and panic instead.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DdError {
    /// Requested qubit count exceeds [`MAX_QUBITS`](crate::MAX_QUBITS) or is zero.
    QubitCountOutOfRange {
        /// The rejected count.
        requested: usize,
    },
    /// A qubit index was not below the declared register size.
    QubitIndexOutOfRange {
        /// The rejected index.
        qubit: usize,
        /// The register size.
        num_qubits: usize,
    },
    /// A control qubit coincided with the gate target.
    ControlOnTarget {
        /// The offending qubit.
        qubit: usize,
    },
    /// The same qubit appeared twice in a control list.
    DuplicateControl {
        /// The offending qubit.
        qubit: usize,
    },
    /// An amplitude slice whose length is not a power of two.
    AmplitudesNotPowerOfTwo {
        /// The rejected length.
        len: usize,
    },
    /// A state vector with (near-)zero norm.
    ZeroVector,
    /// A gate matrix that is not unitary within tolerance.
    NotUnitary,
    /// A measurement/collapse on an outcome of probability ~0.
    ImpossibleOutcome {
        /// The qubit being measured.
        qubit: usize,
        /// The requested outcome.
        outcome: bool,
    },
    /// Dense export requested for a register too large to materialize.
    TooLargeForDense {
        /// The register size.
        num_qubits: usize,
        /// The largest register `to_dense_*` accepts.
        max: usize,
    },
}

impl fmt::Display for DdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdError::QubitCountOutOfRange { requested } => {
                write!(f, "qubit count {requested} out of range 1..={}", crate::MAX_QUBITS)
            }
            DdError::QubitIndexOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit index {qubit} out of range for {num_qubits}-qubit register")
            }
            DdError::ControlOnTarget { qubit } => {
                write!(f, "control qubit {qubit} coincides with gate target")
            }
            DdError::DuplicateControl { qubit } => {
                write!(f, "qubit {qubit} appears twice in the control list")
            }
            DdError::AmplitudesNotPowerOfTwo { len } => {
                write!(f, "amplitude vector length {len} is not a power of two")
            }
            DdError::ZeroVector => write!(f, "state vector has zero norm"),
            DdError::NotUnitary => write!(f, "gate matrix is not unitary"),
            DdError::ImpossibleOutcome { qubit, outcome } => {
                write!(
                    f,
                    "qubit {qubit} has probability 0 of outcome |{}⟩",
                    u8::from(*outcome)
                )
            }
            DdError::TooLargeForDense { num_qubits, max } => {
                write!(f, "dense export of {num_qubits} qubits exceeds the {max}-qubit limit")
            }
        }
    }
}

impl Error for DdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = DdError::QubitIndexOutOfRange {
            qubit: 5,
            num_qubits: 3,
        };
        assert_eq!(
            e.to_string(),
            "qubit index 5 out of range for 3-qubit register"
        );
        assert!(DdError::ZeroVector.to_string().contains("zero norm"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<DdError>();
    }
}
