//! Error type for fallible package operations.

use std::error::Error;
use std::fmt;

/// Which budget a [`DdError::ResourceExhausted`] error refers to.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResourceKind {
    /// Live decision-diagram nodes ([`Limits::max_nodes`](crate::Limits::max_nodes)).
    Nodes,
    /// Interned complex values ([`Limits::max_complex_entries`](crate::Limits::max_complex_entries)).
    ComplexEntries,
    /// Operation recursion depth ([`Limits::recursion_depth`](crate::Limits::recursion_depth)).
    RecursionDepth,
    /// Memoized operation results ([`Limits::max_compute_entries`](crate::Limits::max_compute_entries)).
    /// Caches normally evict instead of erroring; reserved for drivers that
    /// treat eviction pressure as a hard failure.
    ComputeEntries,
}

impl ResourceKind {
    /// The [`Limits`](crate::Limits) field that configures this budget —
    /// so an exhaustion message tells the user which knob to turn.
    pub fn limit_name(&self) -> &'static str {
        match self {
            ResourceKind::Nodes => "max_nodes",
            ResourceKind::ComplexEntries => "max_complex_entries",
            ResourceKind::RecursionDepth => "recursion_depth",
            ResourceKind::ComputeEntries => "max_compute_entries",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResourceKind::Nodes => "node budget",
            ResourceKind::ComplexEntries => "complex-table budget",
            ResourceKind::RecursionDepth => "recursion depth limit",
            ResourceKind::ComputeEntries => "compute-table budget",
        })
    }
}

/// Errors returned by the public, user-input-driven package API.
///
/// Internal invariant violations (malformed diagrams produced by the package
/// itself) are bugs and panic instead.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DdError {
    /// Requested qubit count exceeds [`MAX_QUBITS`](crate::MAX_QUBITS) or is zero.
    QubitCountOutOfRange {
        /// The rejected count.
        requested: usize,
    },
    /// A qubit index was not below the declared register size.
    QubitIndexOutOfRange {
        /// The rejected index.
        qubit: usize,
        /// The register size.
        num_qubits: usize,
    },
    /// A control qubit coincided with the gate target.
    ControlOnTarget {
        /// The offending qubit.
        qubit: usize,
    },
    /// The same qubit appeared twice in a control list.
    DuplicateControl {
        /// The offending qubit.
        qubit: usize,
    },
    /// An amplitude slice whose length is not a power of two.
    AmplitudesNotPowerOfTwo {
        /// The rejected length.
        len: usize,
    },
    /// A state vector with (near-)zero norm.
    ZeroVector,
    /// A gate matrix that is not unitary within tolerance.
    NotUnitary,
    /// A measurement/collapse on an outcome of probability ~0.
    ImpossibleOutcome {
        /// The qubit being measured.
        qubit: usize,
        /// The requested outcome.
        outcome: bool,
    },
    /// Dense export requested for a register too large to materialize.
    TooLargeForDense {
        /// The register size.
        num_qubits: usize,
        /// The largest register `to_dense_*` accepts.
        max: usize,
    },
    /// A configured resource budget ([`Limits`](crate::Limits)) was exhausted
    /// even after garbage collection under pressure.
    ResourceExhausted {
        /// The budget that ran out.
        kind: ResourceKind,
        /// The configured limit.
        limit: usize,
        /// Usage observed when the limit was hit (≥ `limit`).
        used: usize,
    },
    /// The armed wall-clock deadline expired mid-operation.
    DeadlineExceeded {
        /// Milliseconds past the deadline when the overrun was noticed.
        excess_ms: u64,
    },
}

impl DdError {
    /// True for errors caused by a configured resource budget or deadline
    /// (as opposed to invalid input). Drivers use this to pick exit codes
    /// and decide whether degradation (GC, dense fallback) may help.
    pub fn is_resource(&self) -> bool {
        matches!(
            self,
            DdError::ResourceExhausted { .. } | DdError::DeadlineExceeded { .. }
        )
    }
}

impl fmt::Display for DdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdError::QubitCountOutOfRange { requested } => {
                write!(f, "qubit count {requested} out of range 1..={}", crate::MAX_QUBITS)
            }
            DdError::QubitIndexOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit index {qubit} out of range for {num_qubits}-qubit register")
            }
            DdError::ControlOnTarget { qubit } => {
                write!(f, "control qubit {qubit} coincides with gate target")
            }
            DdError::DuplicateControl { qubit } => {
                write!(f, "qubit {qubit} appears twice in the control list")
            }
            DdError::AmplitudesNotPowerOfTwo { len } => {
                write!(f, "amplitude vector length {len} is not a power of two")
            }
            DdError::ZeroVector => write!(f, "state vector has zero norm"),
            DdError::NotUnitary => write!(f, "gate matrix is not unitary"),
            DdError::ImpossibleOutcome { qubit, outcome } => {
                write!(
                    f,
                    "qubit {qubit} has probability 0 of outcome |{}⟩",
                    u8::from(*outcome)
                )
            }
            DdError::TooLargeForDense { num_qubits, max } => {
                write!(f, "dense export of {num_qubits} qubits exceeds the {max}-qubit limit")
            }
            DdError::ResourceExhausted { kind, limit, used } => {
                write!(
                    f,
                    "{kind} exhausted: {used} used, configured limit {} = {limit}",
                    kind.limit_name()
                )
            }
            DdError::DeadlineExceeded { excess_ms } => {
                write!(f, "deadline exceeded by {excess_ms} ms")
            }
        }
    }
}

impl Error for DdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = DdError::QubitIndexOutOfRange {
            qubit: 5,
            num_qubits: 3,
        };
        assert_eq!(
            e.to_string(),
            "qubit index 5 out of range for 3-qubit register"
        );
        assert!(DdError::ZeroVector.to_string().contains("zero norm"));
    }

    #[test]
    fn resource_errors_display_and_classify() {
        let e = DdError::ResourceExhausted {
            kind: ResourceKind::Nodes,
            limit: 10_000,
            used: 10_001,
        };
        assert_eq!(
            e.to_string(),
            "node budget exhausted: 10001 used, configured limit max_nodes = 10000"
        );
        assert!(e.is_resource());
        // Every kind names the Limits field that configures it.
        for (kind, name) in [
            (ResourceKind::Nodes, "max_nodes"),
            (ResourceKind::ComplexEntries, "max_complex_entries"),
            (ResourceKind::RecursionDepth, "recursion_depth"),
            (ResourceKind::ComputeEntries, "max_compute_entries"),
        ] {
            assert_eq!(kind.limit_name(), name);
            let msg = DdError::ResourceExhausted { kind, limit: 1, used: 2 }.to_string();
            assert!(msg.contains(name), "{msg:?} lacks {name}");
        }
        let d = DdError::DeadlineExceeded { excess_ms: 7 };
        assert_eq!(d.to_string(), "deadline exceeded by 7 ms");
        assert!(d.is_resource());
        assert!(!DdError::ZeroVector.is_resource());
        assert!(!DdError::NotUnitary.is_resource());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<DdError>();
    }
}
