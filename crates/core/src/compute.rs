//! Compute tables (operation caches).
//!
//! Real decision-diagram packages memoize recursive operation results so
//! repeated sub-computations are answered in O(1) (paper footnote 4). Keys
//! are canonical operand node ids (weights are factored out by the callers,
//! so cached entries are scale-invariant and hit rates stay high).

use crate::types::{MatEdge, MNodeId, Qubit, VecEdge, VNodeId};
use qdd_complex::{ComplexIdx, FxHashMap};
use std::hash::Hash;

/// A single memoization map with hit statistics.
#[derive(Clone, Debug)]
pub(crate) struct Cache<K, V> {
    map: FxHashMap<K, V>,
    lookups: u64,
    hits: u64,
}

impl<K: Eq + Hash, V: Copy> Cache<K, V> {
    pub(crate) fn new() -> Self {
        Cache {
            map: FxHashMap::default(),
            lookups: 0,
            hits: 0,
        }
    }

    pub(crate) fn get(&mut self, key: &K) -> Option<V> {
        self.lookups += 1;
        let hit = self.map.get(key).copied();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    pub(crate) fn insert(&mut self, key: K, value: V) {
        self.map.insert(key, value);
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn lookups(&self) -> u64 {
        self.lookups
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }
}

/// All operation caches of a package.
#[derive(Clone, Debug)]
pub(crate) struct ComputeTables {
    /// `add(x, y·β)` for unit-weight `x`: key `(x, y, β)`.
    pub add_vec: Cache<(VNodeId, VNodeId, ComplexIdx), VecEdge>,
    /// Matrix addition, same keying as `add_vec`.
    pub add_mat: Cache<(MNodeId, MNodeId, ComplexIdx), MatEdge>,
    /// `M · v` for unit-weight operands.
    pub mat_vec: Cache<(MNodeId, VNodeId), VecEdge>,
    /// `A · B` for unit-weight operands.
    pub mat_mat: Cache<(MNodeId, MNodeId), MatEdge>,
    /// `a ⊗ b` for unit-weight operands.
    pub kron_vec: Cache<(VNodeId, VNodeId), VecEdge>,
    /// `A ⊗ B` for unit-weight operands.
    pub kron_mat: Cache<(MNodeId, MNodeId), MatEdge>,
    /// Conjugate transpose of a unit-weight matrix node.
    pub adjoint: Cache<MNodeId, MatEdge>,
    /// `⟨a|b⟩` for unit-weight operands.
    pub inner: Cache<(VNodeId, VNodeId), ComplexIdx>,
    /// Probability of measuring `1` on a qubit below a unit-weight node.
    pub prob_one: Cache<(VNodeId, Qubit), f64>,
}

impl ComputeTables {
    pub(crate) fn new() -> Self {
        ComputeTables {
            add_vec: Cache::new(),
            add_mat: Cache::new(),
            mat_vec: Cache::new(),
            mat_mat: Cache::new(),
            kron_vec: Cache::new(),
            kron_mat: Cache::new(),
            adjoint: Cache::new(),
            inner: Cache::new(),
            prob_one: Cache::new(),
        }
    }

    /// Drops every cached entry (mandatory after garbage collection, since
    /// keys refer to node ids that may have been freed).
    pub(crate) fn clear(&mut self) {
        self.add_vec.clear();
        self.add_mat.clear();
        self.mat_vec.clear();
        self.mat_mat.clear();
        self.kron_vec.clear();
        self.kron_mat.clear();
        self.adjoint.clear();
        self.inner.clear();
        self.prob_one.clear();
    }

    pub(crate) fn total_lookups(&self) -> u64 {
        self.add_vec.lookups()
            + self.add_mat.lookups()
            + self.mat_vec.lookups()
            + self.mat_mat.lookups()
            + self.kron_vec.lookups()
            + self.kron_mat.lookups()
            + self.adjoint.lookups()
            + self.inner.lookups()
            + self.prob_one.lookups()
    }

    pub(crate) fn total_hits(&self) -> u64 {
        self.add_vec.hits()
            + self.add_mat.hits()
            + self.mat_vec.hits()
            + self.mat_mat.hits()
            + self.kron_vec.hits()
            + self.kron_mat.hits()
            + self.adjoint.hits()
            + self.inner.hits()
            + self.prob_one.hits()
    }

    pub(crate) fn total_entries(&self) -> usize {
        self.add_vec.len()
            + self.add_mat.len()
            + self.mat_vec.len()
            + self.mat_mat.len()
            + self.kron_vec.len()
            + self.kron_mat.len()
            + self.adjoint.len()
            + self.inner.len()
            + self.prob_one.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut c: Cache<u32, u32> = Cache::new();
        assert_eq!(c.get(&1), None);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.lookups(), 2);
        assert_eq!(c.hits(), 1);
        c.clear();
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn compute_tables_clear_all() {
        let mut t = ComputeTables::new();
        t.mat_vec
            .insert((MNodeId::from_index(0), VNodeId::from_index(0)), VecEdge::ZERO);
        assert_eq!(t.total_entries(), 1);
        t.clear();
        assert_eq!(t.total_entries(), 0);
    }
}
