//! Compute tables (operation caches).
//!
//! Real decision-diagram packages memoize recursive operation results so
//! repeated sub-computations are answered in O(1) (paper footnote 4). Keys
//! are canonical operand node ids (weights are factored out by the callers,
//! so cached entries are scale-invariant and hit rates stay high).

use crate::types::{MatEdge, MNodeId, Qubit, VecEdge, VNodeId};
use qdd_complex::{ComplexIdx, FxHashMap};
use std::hash::Hash;

/// A single memoization map with hit statistics and an optional capacity.
///
/// A full cache evicts by clearing: entries carry no recency metadata, and
/// dropping the whole map on pressure (the classic DD-package strategy) keeps
/// inserts O(1) with zero overhead while unbounded.
#[derive(Clone, Debug)]
pub(crate) struct Cache<K, V> {
    map: FxHashMap<K, V>,
    cap: usize,
    lookups: u64,
    hits: u64,
    evictions: u64,
}

impl<K: Eq + Hash, V: Copy> Cache<K, V> {
    pub(crate) fn with_cap(cap: usize) -> Self {
        Cache {
            map: FxHashMap::default(),
            cap,
            lookups: 0,
            hits: 0,
            evictions: 0,
        }
    }

    pub(crate) fn get(&mut self, key: &K) -> Option<V> {
        self.lookups += 1;
        let hit = self.map.get(key).copied();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    pub(crate) fn insert(&mut self, key: K, value: V) {
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            self.map.clear();
            self.evictions += 1;
        }
        self.map.insert(key, value);
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn lookups(&self) -> u64 {
        self.lookups
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// All operation caches of a package.
#[derive(Clone, Debug)]
pub(crate) struct ComputeTables {
    /// `add(x, y·β)` for unit-weight `x`: key `(x, y, β)`.
    pub add_vec: Cache<(VNodeId, VNodeId, ComplexIdx), VecEdge>,
    /// Matrix addition, same keying as `add_vec`.
    pub add_mat: Cache<(MNodeId, MNodeId, ComplexIdx), MatEdge>,
    /// `M · v` for unit-weight operands.
    pub mat_vec: Cache<(MNodeId, VNodeId), VecEdge>,
    /// `A · B` for unit-weight operands.
    pub mat_mat: Cache<(MNodeId, MNodeId), MatEdge>,
    /// `a ⊗ b` for unit-weight operands.
    pub kron_vec: Cache<(VNodeId, VNodeId), VecEdge>,
    /// `A ⊗ B` for unit-weight operands.
    pub kron_mat: Cache<(MNodeId, MNodeId), MatEdge>,
    /// Conjugate transpose of a unit-weight matrix node.
    pub adjoint: Cache<MNodeId, MatEdge>,
    /// `⟨a|b⟩` for unit-weight operands.
    pub inner: Cache<(VNodeId, VNodeId), ComplexIdx>,
    /// Probability of measuring `1` on a qubit below a unit-weight node.
    pub prob_one: Cache<(VNodeId, Qubit), f64>,
}

/// Number of caches in [`ComputeTables`]; a total-entry budget is split
/// evenly across them.
const CACHE_COUNT: usize = 9;

/// Floor on the per-cache capacity when a total budget is configured; below
/// this a cache thrashes (clears on nearly every insert) without saving
/// meaningful memory.
const MIN_CACHE_CAP: usize = 16;

impl ComputeTables {
    /// Tables whose combined size stays at or under `max_total_entries`
    /// (each cache gets an even share, floored at [`MIN_CACHE_CAP`]).
    pub(crate) fn bounded(max_total_entries: Option<usize>) -> Self {
        let cap = match max_total_entries {
            Some(total) => (total / CACHE_COUNT).max(MIN_CACHE_CAP),
            None => usize::MAX,
        };
        ComputeTables {
            add_vec: Cache::with_cap(cap),
            add_mat: Cache::with_cap(cap),
            mat_vec: Cache::with_cap(cap),
            mat_mat: Cache::with_cap(cap),
            kron_vec: Cache::with_cap(cap),
            kron_mat: Cache::with_cap(cap),
            adjoint: Cache::with_cap(cap),
            inner: Cache::with_cap(cap),
            prob_one: Cache::with_cap(cap),
        }
    }

    /// Drops every cached entry (mandatory after garbage collection, since
    /// keys refer to node ids that may have been freed).
    pub(crate) fn clear(&mut self) {
        self.add_vec.clear();
        self.add_mat.clear();
        self.mat_vec.clear();
        self.mat_mat.clear();
        self.kron_vec.clear();
        self.kron_mat.clear();
        self.adjoint.clear();
        self.inner.clear();
        self.prob_one.clear();
    }

    pub(crate) fn total_lookups(&self) -> u64 {
        self.add_vec.lookups()
            + self.add_mat.lookups()
            + self.mat_vec.lookups()
            + self.mat_mat.lookups()
            + self.kron_vec.lookups()
            + self.kron_mat.lookups()
            + self.adjoint.lookups()
            + self.inner.lookups()
            + self.prob_one.lookups()
    }

    pub(crate) fn total_hits(&self) -> u64 {
        self.add_vec.hits()
            + self.add_mat.hits()
            + self.mat_vec.hits()
            + self.mat_mat.hits()
            + self.kron_vec.hits()
            + self.kron_mat.hits()
            + self.adjoint.hits()
            + self.inner.hits()
            + self.prob_one.hits()
    }

    pub(crate) fn total_entries(&self) -> usize {
        self.add_vec.len()
            + self.add_mat.len()
            + self.mat_vec.len()
            + self.mat_mat.len()
            + self.kron_vec.len()
            + self.kron_mat.len()
            + self.adjoint.len()
            + self.inner.len()
            + self.prob_one.len()
    }

    /// Capacity-pressure clears across all caches since construction.
    pub(crate) fn total_evictions(&self) -> u64 {
        self.add_vec.evictions()
            + self.add_mat.evictions()
            + self.mat_vec.evictions()
            + self.mat_mat.evictions()
            + self.kron_vec.evictions()
            + self.kron_mat.evictions()
            + self.adjoint.evictions()
            + self.inner.evictions()
            + self.prob_one.evictions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut c: Cache<u32, u32> = Cache::with_cap(usize::MAX);
        assert_eq!(c.get(&1), None);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.lookups(), 2);
        assert_eq!(c.hits(), 1);
        c.clear();
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn bounded_cache_evicts_by_clearing() {
        let mut c: Cache<u32, u32> = Cache::with_cap(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.evictions(), 0);
        // Overwriting an existing key at capacity is not an eviction.
        c.insert(2, 21);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.len(), 2);
        // A genuinely new key at capacity clears the cache first.
        c.insert(3, 30);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn bounded_tables_split_budget_with_floor() {
        use qdd_complex::C_ZERO;
        let t = ComputeTables::bounded(Some(9));
        // 9 entries / 9 caches = 1, floored at MIN_CACHE_CAP.
        let mut add_vec = t.add_vec;
        for i in 0..MIN_CACHE_CAP {
            add_vec.insert((VNodeId::from_index(i), VNodeId::from_index(i), C_ZERO), VecEdge::ZERO);
        }
        assert_eq!(add_vec.len(), MIN_CACHE_CAP);
        assert_eq!(add_vec.evictions(), 0);
        add_vec.insert(
            (VNodeId::from_index(99), VNodeId::from_index(99), C_ZERO),
            VecEdge::ZERO,
        );
        assert_eq!(add_vec.evictions(), 1);
    }

    #[test]
    fn compute_tables_clear_all() {
        let mut t = ComputeTables::bounded(None);
        t.mat_vec
            .insert((MNodeId::from_index(0), VNodeId::from_index(0)), VecEdge::ZERO);
        assert_eq!(t.total_entries(), 1);
        t.clear();
        assert_eq!(t.total_entries(), 0);
    }
}
