//! Compute tables (operation caches).
//!
//! Real decision-diagram packages memoize recursive operation results so
//! repeated sub-computations are answered in O(1) (paper footnote 4). Keys
//! are canonical operand node ids (weights are factored out by the callers,
//! so cached entries are scale-invariant and hit rates stay high).
//!
//! The tables are **direct-mapped** in the style of production DD packages
//! (JKQ/MQT): a fixed power-of-two slot array, the key hashed once to a slot
//! index, and a colliding insert overwriting the previous occupant in place.
//! Compared to a general hash map this removes per-insert allocation, rehash
//! storms, and clear-the-world eviction from the hottest loops of the
//! package — a lookup is one multiply-rotate hash, one index, one compare.

use crate::types::{MatEdge, MNodeId, Qubit, VecEdge, VNodeId};
use qdd_complex::{ComplexIdx, FxHasher};
use std::hash::{Hash, Hasher};

/// A single direct-mapped memoization table with hit statistics.
///
/// The slot array is allocated lazily on the first insert, so packages that
/// never use an operation pay nothing for its table. A colliding insert
/// (different key hashing to an occupied slot) drops exactly one entry — the
/// previous occupant — which is counted in [`Cache::dropped`]; explicit
/// [`Cache::clear`] calls (mandatory after garbage collection) are counted
/// separately in [`Cache::clears`].
#[derive(Clone, Debug)]
pub(crate) struct Cache<K, V> {
    slots: Vec<Option<(K, V)>>,
    /// Power-of-two capacity the slot array takes on first insert.
    cap: usize,
    len: usize,
    lookups: u64,
    hits: u64,
    dropped: u64,
    clears: u64,
}

/// Smallest direct-mapped table: below this the table thrashes (every
/// insert collides) without saving meaningful memory.
pub(crate) const MIN_CACHE_CAP: usize = 16;

#[inline]
fn slot_of<K: Hash>(key: &K, mask: usize) -> usize {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    (h.finish() as usize) & mask
}

impl<K: Eq + Hash + Copy, V: Copy> Cache<K, V> {
    /// A table with `cap` slots, rounded down to a power of two (floor
    /// [`MIN_CACHE_CAP`]). `usize::MAX` selects the given default capacity.
    pub(crate) fn with_cap(cap: usize) -> Self {
        let cap = cap.clamp(MIN_CACHE_CAP, 1 << 26);
        let cap = if cap.is_power_of_two() {
            cap
        } else {
            cap.next_power_of_two() >> 1
        };
        Cache {
            slots: Vec::new(),
            cap,
            len: 0,
            lookups: 0,
            hits: 0,
            dropped: 0,
            clears: 0,
        }
    }

    pub(crate) fn get(&mut self, key: &K) -> Option<V> {
        self.lookups += 1;
        if self.slots.is_empty() {
            return None;
        }
        match &self.slots[slot_of(key, self.cap - 1)] {
            Some((k, v)) if k == key => {
                self.hits += 1;
                Some(*v)
            }
            _ => None,
        }
    }

    pub(crate) fn insert(&mut self, key: K, value: V) {
        if self.slots.is_empty() {
            self.slots.resize_with(self.cap, || None);
        }
        let slot = &mut self.slots[slot_of(&key, self.cap - 1)];
        match slot {
            None => self.len += 1,
            Some((k, _)) if *k != key => self.dropped += 1,
            Some(_) => {}
        }
        *slot = Some((key, value));
    }

    /// Drops every entry (used after garbage collection, when keys refer to
    /// node ids that may have been freed). Counted in [`Cache::clears`];
    /// the slot array is kept allocated.
    pub(crate) fn clear(&mut self) {
        if self.len > 0 {
            self.clears += 1;
            self.slots.iter_mut().for_each(|s| *s = None);
            self.len = 0;
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn capacity(&self) -> usize {
        self.cap
    }

    pub(crate) fn lookups(&self) -> u64 {
        self.lookups
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    /// Entries dropped by colliding inserts (one per collision).
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Non-empty [`Cache::clear`] calls since construction.
    pub(crate) fn clears(&self) -> u64 {
        self.clears
    }
}

/// Public per-table statistics snapshot (see
/// [`DdPackage::compute_table_stats`](crate::DdPackage::compute_table_stats)).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ComputeTableStat {
    /// Stable table name (e.g. `"mat-vec"`).
    pub name: &'static str,
    /// Total lookups.
    pub lookups: u64,
    /// Lookups answered from the table.
    pub hits: u64,
    /// Entries dropped by colliding inserts.
    pub dropped: u64,
    /// Whole-table clears (after GC or by explicit request).
    pub clears: u64,
    /// Entries currently stored.
    pub entries: usize,
    /// Slot capacity.
    pub capacity: usize,
}

impl ComputeTableStat {
    /// Hit rate in `[0, 1]` (0 when the table was never probed).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

macro_rules! stat_of {
    ($table:expr, $name:literal) => {
        ComputeTableStat {
            name: $name,
            lookups: $table.lookups(),
            hits: $table.hits(),
            dropped: $table.dropped(),
            clears: $table.clears(),
            entries: $table.len(),
            capacity: $table.capacity(),
        }
    };
}

/// All operation caches of a package.
#[derive(Clone, Debug)]
pub(crate) struct ComputeTables {
    /// `add(x, y·β)` for unit-weight `x`: key `(x, y, β)`.
    pub add_vec: Cache<(VNodeId, VNodeId, ComplexIdx), VecEdge>,
    /// Matrix addition, same keying as `add_vec`.
    pub add_mat: Cache<(MNodeId, MNodeId, ComplexIdx), MatEdge>,
    /// `M · v` for unit-weight operands.
    pub mat_vec: Cache<(MNodeId, VNodeId), VecEdge>,
    /// `A · B` for unit-weight operands.
    pub mat_mat: Cache<(MNodeId, MNodeId), MatEdge>,
    /// `a ⊗ b` for unit-weight operands.
    pub kron_vec: Cache<(VNodeId, VNodeId), VecEdge>,
    /// `A ⊗ B` for unit-weight operands; the third component is the level
    /// shift applied to `A` (`B`'s logical span, which identity-skipped
    /// roots under-report, so it cannot be derived from the node alone).
    pub kron_mat: Cache<(MNodeId, MNodeId, Qubit), MatEdge>,
    /// Conjugate transpose of a unit-weight matrix node.
    pub adjoint: Cache<MNodeId, MatEdge>,
    /// `⟨a|b⟩` for unit-weight operands.
    pub inner: Cache<(VNodeId, VNodeId), ComplexIdx>,
    /// Probability of measuring `1` on a qubit below a unit-weight node.
    pub prob_one: Cache<(VNodeId, Qubit), f64>,
}

/// Number of caches in [`ComputeTables`]; a total-entry budget is split
/// evenly across them.
const CACHE_COUNT: usize = 9;

/// Default slot count of the four hot tables (addition and multiplication
/// carry almost all traffic in simulation and verification).
const DEFAULT_HOT_CAP: usize = 1 << 15;

/// Default slot count of the remaining tables.
const DEFAULT_COLD_CAP: usize = 1 << 12;

impl ComputeTables {
    /// Tables whose combined slot count stays at or under
    /// `max_total_entries` (each cache gets an even power-of-two share,
    /// floored at [`MIN_CACHE_CAP`]); `None` selects the default
    /// capacities.
    pub(crate) fn bounded(max_total_entries: Option<usize>) -> Self {
        let (hot, cold) = match max_total_entries {
            Some(total) => {
                let share = (total / CACHE_COUNT).max(MIN_CACHE_CAP);
                (share, share)
            }
            None => (DEFAULT_HOT_CAP, DEFAULT_COLD_CAP),
        };
        ComputeTables {
            add_vec: Cache::with_cap(hot),
            add_mat: Cache::with_cap(hot),
            mat_vec: Cache::with_cap(hot),
            mat_mat: Cache::with_cap(hot),
            kron_vec: Cache::with_cap(cold),
            kron_mat: Cache::with_cap(cold),
            adjoint: Cache::with_cap(cold),
            inner: Cache::with_cap(cold),
            prob_one: Cache::with_cap(cold),
        }
    }

    /// Drops every cached entry (mandatory after garbage collection, since
    /// keys refer to node ids that may have been freed).
    pub(crate) fn clear(&mut self) {
        self.add_vec.clear();
        self.add_mat.clear();
        self.mat_vec.clear();
        self.mat_mat.clear();
        self.kron_vec.clear();
        self.kron_mat.clear();
        self.adjoint.clear();
        self.inner.clear();
        self.prob_one.clear();
    }

    /// Per-table statistics in reporting order.
    pub(crate) fn per_table(&self) -> [ComputeTableStat; CACHE_COUNT] {
        [
            stat_of!(self.add_vec, "add-vec"),
            stat_of!(self.add_mat, "add-mat"),
            stat_of!(self.mat_vec, "mat-vec"),
            stat_of!(self.mat_mat, "mat-mat"),
            stat_of!(self.kron_vec, "kron-vec"),
            stat_of!(self.kron_mat, "kron-mat"),
            stat_of!(self.adjoint, "adjoint"),
            stat_of!(self.inner, "inner"),
            stat_of!(self.prob_one, "prob-one"),
        ]
    }

    pub(crate) fn total_lookups(&self) -> u64 {
        self.per_table().iter().map(|t| t.lookups).sum()
    }

    pub(crate) fn total_hits(&self) -> u64 {
        self.per_table().iter().map(|t| t.hits).sum()
    }

    pub(crate) fn total_entries(&self) -> usize {
        self.per_table().iter().map(|t| t.entries).sum()
    }

    /// Entries dropped by colliding inserts across all tables.
    pub(crate) fn total_dropped(&self) -> u64 {
        self.per_table().iter().map(|t| t.dropped).sum()
    }

    /// Whole-table clears across all tables.
    pub(crate) fn total_clears(&self) -> u64 {
        self.per_table().iter().map(|t| t.clears).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut c: Cache<u32, u32> = Cache::with_cap(64);
        assert_eq!(c.get(&1), None);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.lookups(), 2);
        assert_eq!(c.hits(), 1);
        c.clear();
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.clears(), 1);
    }

    #[test]
    fn colliding_insert_drops_exactly_one_entry() {
        let mut c: Cache<u32, u32> = Cache::with_cap(16);
        // Find two keys that collide on the 16-slot table.
        let mask = c.capacity() - 1;
        let base_slot = slot_of(&0u32, mask);
        let colliding = (1u32..1000)
            .find(|k| slot_of(k, mask) == base_slot)
            .expect("a colliding key exists");
        c.insert(0, 100);
        assert_eq!(c.len(), 1);
        c.insert(colliding, 200);
        // Overwrite in place: one entry dropped, still one stored.
        assert_eq!(c.len(), 1);
        assert_eq!(c.dropped(), 1);
        assert_eq!(c.clears(), 0);
        // The old key is gone; the new key answers with its own value.
        assert_eq!(c.get(&0), None);
        assert_eq!(c.get(&colliding), Some(200));
    }

    #[test]
    fn overwriting_same_key_is_not_a_drop() {
        let mut c: Cache<u32, u32> = Cache::with_cap(16);
        c.insert(7, 1);
        c.insert(7, 2);
        assert_eq!(c.dropped(), 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&7), Some(2));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let c: Cache<u32, u32> = Cache::with_cap(100);
        assert_eq!(c.capacity(), 64);
        let c: Cache<u32, u32> = Cache::with_cap(128);
        assert_eq!(c.capacity(), 128);
        let c: Cache<u32, u32> = Cache::with_cap(3);
        assert_eq!(c.capacity(), MIN_CACHE_CAP);
    }

    #[test]
    fn clear_on_empty_is_not_counted() {
        let mut c: Cache<u32, u32> = Cache::with_cap(16);
        c.clear();
        assert_eq!(c.clears(), 0);
        c.insert(1, 1);
        c.clear();
        c.clear();
        assert_eq!(c.clears(), 1);
    }

    #[test]
    fn bounded_tables_split_budget_with_floor() {
        let t = ComputeTables::bounded(Some(9));
        // 9 entries / 9 caches = 1, floored at MIN_CACHE_CAP.
        assert_eq!(t.add_vec.capacity(), MIN_CACHE_CAP);
        let t = ComputeTables::bounded(Some(9 * 1024));
        assert_eq!(t.mat_vec.capacity(), 1024);
        let t = ComputeTables::bounded(None);
        assert_eq!(t.mat_vec.capacity(), DEFAULT_HOT_CAP);
        assert_eq!(t.adjoint.capacity(), DEFAULT_COLD_CAP);
    }

    #[test]
    fn compute_tables_clear_all() {
        let mut t = ComputeTables::bounded(None);
        t.mat_vec
            .insert((MNodeId::from_index(0), VNodeId::from_index(0)), VecEdge::ZERO);
        assert_eq!(t.total_entries(), 1);
        t.clear();
        assert_eq!(t.total_entries(), 0);
        assert_eq!(t.total_clears(), 1);
    }

    #[test]
    fn per_table_stats_name_every_cache() {
        let t = ComputeTables::bounded(None);
        let stats = t.per_table();
        assert_eq!(stats.len(), CACHE_COUNT);
        let names: std::collections::HashSet<&str> =
            stats.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), CACHE_COUNT, "table names must be distinct");
    }

    use proptest::prelude::*;

    proptest! {
        /// A direct-mapped table must never answer with a value for the
        /// wrong key, no matter the collision pattern.
        #[test]
        fn collisions_never_alias_keys(
            ops in prop::collection::vec((0u32..64, 0u32..1000), 1..200)
        ) {
            let mut cache: Cache<u32, u32> = Cache::with_cap(MIN_CACHE_CAP);
            let mut model = std::collections::HashMap::new();
            for (key, value) in ops {
                cache.insert(key, value);
                model.insert(key, value);
                // Whatever the cache answers must match the model exactly;
                // misses (evicted entries) are always allowed.
                for probe in 0..64u32 {
                    if let Some(got) = cache.get(&probe) {
                        prop_assert_eq!(Some(&got), model.get(&probe));
                    }
                }
            }
        }
    }
}
