//! Observables: Pauli strings, expectation values, and single-qubit reduced
//! states.
//!
//! The paper's tool displays measurement probabilities; a library user
//! additionally wants expectation values of observables — computed here
//! without densifying, via `⟨ψ| P |ψ⟩` with `P` applied as a gate sequence
//! — and the reduced density matrix of a qubit (which also quantifies the
//! entanglement the paper's Example 1 points at: a Bell qubit is maximally
//! mixed).

use crate::error::DdError;
use crate::gates;
use crate::package::DdPackage;
use crate::types::VecEdge;
use qdd_complex::Complex;
use std::fmt;

/// A single-qubit Pauli operator.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

impl Pauli {
    fn matrix(self) -> gates::GateMatrix {
        match self {
            Pauli::I => gates::I,
            Pauli::X => gates::X,
            Pauli::Y => gates::Y,
            Pauli::Z => gates::Z,
        }
    }
}

/// A tensor product of single-qubit Paulis, e.g. `Z₂ ⊗ I₁ ⊗ X₀`.
///
/// # Examples
///
/// ```
/// use qdd_core::{Pauli, PauliString};
///
/// let zz: PauliString = "ZZ".parse()?;
/// assert_eq!(zz.factor(0), Pauli::Z);
/// assert_eq!(zz.to_string(), "ZZ");
/// # Ok::<(), qdd_core::ParsePauliError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PauliString {
    /// `factors[q]` acts on qubit `q` (so the *last* character of the
    /// string form, big-endian, is qubit 0).
    factors: Vec<Pauli>,
}

/// Error parsing a [`PauliString`] from text.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ParsePauliError {
    /// The offending character.
    pub found: char,
}

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pauli character `{}` (expected I, X, Y, or Z)", self.found)
    }
}

impl std::error::Error for ParsePauliError {}

impl PauliString {
    /// Builds a Pauli string from per-qubit factors (`factors[q]` acts on
    /// qubit `q`).
    pub fn new(factors: Vec<Pauli>) -> Self {
        PauliString { factors }
    }

    /// The identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            factors: vec![Pauli::I; n],
        }
    }

    /// A single Pauli on one qubit of an `n`-qubit register.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn single(n: usize, qubit: usize, p: Pauli) -> Self {
        assert!(qubit < n, "qubit {qubit} out of range for {n} qubits");
        let mut factors = vec![Pauli::I; n];
        factors[qubit] = p;
        PauliString { factors }
    }

    /// The number of qubits the string spans.
    pub fn num_qubits(&self) -> usize {
        self.factors.len()
    }

    /// The factor acting on `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn factor(&self, qubit: usize) -> Pauli {
        self.factors[qubit]
    }

    /// The non-identity support of the string.
    pub fn support(&self) -> Vec<usize> {
        (0..self.factors.len())
            .filter(|&q| self.factors[q] != Pauli::I)
            .collect()
    }
}

impl std::str::FromStr for PauliString {
    type Err = ParsePauliError;

    /// Parses big-endian text: the first character acts on the
    /// most-significant qubit (matching `|q_{n-1} … q_0⟩`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut factors = Vec::with_capacity(s.len());
        for ch in s.chars().rev() {
            factors.push(match ch {
                'I' | 'i' => Pauli::I,
                'X' | 'x' => Pauli::X,
                'Y' | 'y' => Pauli::Y,
                'Z' | 'z' => Pauli::Z,
                found => return Err(ParsePauliError { found }),
            });
        }
        Ok(PauliString { factors })
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in self.factors.iter().rev() {
            let c = match p {
                Pauli::I => 'I',
                Pauli::X => 'X',
                Pauli::Y => 'Y',
                Pauli::Z => 'Z',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl DdPackage {
    /// The expectation value `⟨ψ| P |ψ⟩` of a Pauli string.
    ///
    /// Always real for Hermitian `P`; the real part is returned.
    ///
    /// # Errors
    ///
    /// [`DdError::QubitIndexOutOfRange`] if the string spans more qubits
    /// than the state.
    pub fn expectation_value(
        &mut self,
        state: VecEdge,
        observable: &PauliString,
    ) -> Result<f64, DdError> {
        let n = self.vec_var(state).map_or(0, |v| v as usize + 1);
        if observable.num_qubits() > n {
            return Err(DdError::QubitIndexOutOfRange {
                qubit: observable.num_qubits() - 1,
                num_qubits: n,
            });
        }
        let mut transformed = state;
        for q in observable.support() {
            transformed =
                self.apply_gate(transformed, observable.factor(q).matrix(), &[], q)?;
        }
        Ok(self.inner_product(state, transformed).re)
    }

    /// The 2×2 reduced density matrix of `qubit`:
    /// `ρ = [[⟨ψ₀|ψ₀⟩, ⟨ψ₀|ψ₁⟩], [⟨ψ₁|ψ₀⟩, ⟨ψ₁|ψ₁⟩]]` where `|ψ_b⟩` is the
    /// (unnormalized) branch with `qubit = b`.
    ///
    /// This is the partial trace the paper mentions for `reset` (§IV-B):
    /// resets map pure states to mixed states in general, which is exactly
    /// what this matrix exposes.
    pub fn reduced_density_matrix(
        &mut self,
        state: VecEdge,
        qubit: usize,
    ) -> [[Complex; 2]; 2] {
        // ⟨ψ|(|i⟩⟨j| ⊗ I)|ψ⟩ through Pauli expectations:
        //   ρ01 + ρ10 = ⟨X⟩,  i(ρ01 − ρ10) = ⟨Y⟩,  ρ00 − ρ11 = ⟨Z⟩.
        let n = self.vec_var(state).map_or(0, |v| v as usize + 1);
        let x = self
            .expectation_value(state, &PauliString::single(n, qubit, Pauli::X))
            .expect("qubit validated");
        let y = self
            .expectation_value(state, &PauliString::single(n, qubit, Pauli::Y))
            .expect("qubit validated");
        let z = self
            .expectation_value(state, &PauliString::single(n, qubit, Pauli::Z))
            .expect("qubit validated");
        let rho00 = (1.0 + z) / 2.0;
        let rho11 = (1.0 - z) / 2.0;
        let rho01 = Complex::new(x / 2.0, -y / 2.0);
        [
            [Complex::real(rho00), rho01],
            [rho01.conj(), Complex::real(rho11)],
        ]
    }

    /// The purity `tr(ρ²)` of one qubit's reduced state: 1 for a product
    /// state, ½ for a maximally entangled qubit (Example 1's Bell pair).
    pub fn qubit_purity(&mut self, state: VecEdge, qubit: usize) -> f64 {
        let rho = self.reduced_density_matrix(state, qubit);
        let mut tr = 0.0;
        #[allow(clippy::needless_range_loop)] // tr(ρ²) is clearest with indices
        for i in 0..2 {
            for j in 0..2 {
                tr += (rho[i][j] * rho[j][i]).re;
            }
        }
        tr
    }

    /// The Bloch vector `(⟨X⟩, ⟨Y⟩, ⟨Z⟩)` of one qubit.
    pub fn bloch_vector(&mut self, state: VecEdge, qubit: usize) -> (f64, f64, f64) {
        let n = self.vec_var(state).map_or(0, |v| v as usize + 1);
        let x = self
            .expectation_value(state, &PauliString::single(n, qubit, Pauli::X))
            .expect("qubit validated");
        let y = self
            .expectation_value(state, &PauliString::single(n, qubit, Pauli::Y))
            .expect("qubit validated");
        let z = self
            .expectation_value(state, &PauliString::single(n, qubit, Pauli::Z))
            .expect("qubit validated");
        (x, y, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Control;

    fn bell(dd: &mut DdPackage) -> VecEdge {
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
        dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        let p: PauliString = "XIZ".parse().unwrap();
        assert_eq!(p.factor(0), Pauli::Z);
        assert_eq!(p.factor(1), Pauli::I);
        assert_eq!(p.factor(2), Pauli::X);
        assert_eq!(p.to_string(), "XIZ");
        assert_eq!(p.support(), vec![0, 2]);
        assert!("XQZ".parse::<PauliString>().is_err());
    }

    #[test]
    fn z_expectation_on_basis_states() {
        let mut dd = DdPackage::new();
        let zero = dd.zero_state(1).unwrap();
        let one = dd.basis_state(1, 1).unwrap();
        let z = PauliString::single(1, 0, Pauli::Z);
        assert!((dd.expectation_value(zero, &z).unwrap() - 1.0).abs() < 1e-12);
        assert!((dd.expectation_value(one, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_expectation_on_plus_state() {
        let mut dd = DdPackage::new();
        let zero = dd.zero_state(1).unwrap();
        let plus = dd.apply_gate(zero, gates::H, &[], 0).unwrap();
        let x = PauliString::single(1, 0, Pauli::X);
        assert!((dd.expectation_value(plus, &x).unwrap() - 1.0).abs() < 1e-12);
        let z = PauliString::single(1, 0, Pauli::Z);
        assert!(dd.expectation_value(plus, &z).unwrap().abs() < 1e-12);
    }

    #[test]
    fn bell_correlations() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        // ⟨ZZ⟩ = ⟨XX⟩ = 1, ⟨YY⟩ = −1, single-qubit ⟨Z⟩ = 0.
        for (s, want) in [("ZZ", 1.0), ("XX", 1.0), ("YY", -1.0), ("IZ", 0.0), ("ZI", 0.0)] {
            let p: PauliString = s.parse().unwrap();
            let got = dd.expectation_value(b, &p).unwrap();
            assert!((got - want).abs() < 1e-12, "⟨{s}⟩ = {got}, want {want}");
        }
    }

    #[test]
    fn identity_expectation_is_norm() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        let id = PauliString::identity(2);
        assert!((dd.expectation_value(b, &id).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oversized_observable_rejected() {
        let mut dd = DdPackage::new();
        let s = dd.zero_state(2).unwrap();
        let p = PauliString::identity(5);
        assert!(matches!(
            dd.expectation_value(s, &p),
            Err(DdError::QubitIndexOutOfRange { .. })
        ));
    }

    #[test]
    fn bell_qubit_is_maximally_mixed() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        let rho = dd.reduced_density_matrix(b, 0);
        assert!((rho[0][0].re - 0.5).abs() < 1e-12);
        assert!((rho[1][1].re - 0.5).abs() < 1e-12);
        assert!(rho[0][1].abs() < 1e-12, "no coherence in a Bell qubit");
        assert!((dd.qubit_purity(b, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn product_state_qubit_is_pure() {
        let mut dd = DdPackage::new();
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::ry(0.9), &[], 0).unwrap();
        assert!((dd.qubit_purity(s, 0) - 1.0).abs() < 1e-12);
        assert!((dd.qubit_purity(s, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bloch_vector_tracks_rotations() {
        let mut dd = DdPackage::new();
        let z = dd.zero_state(1).unwrap();
        let (x0, y0, z0) = dd.bloch_vector(z, 0);
        assert!((z0 - 1.0).abs() < 1e-12 && x0.abs() < 1e-12 && y0.abs() < 1e-12);
        let theta = 0.7;
        let rotated = dd.apply_gate(z, gates::ry(theta), &[], 0).unwrap();
        let (x, _, zc) = dd.bloch_vector(rotated, 0);
        assert!((x - theta.sin()).abs() < 1e-12);
        assert!((zc - theta.cos()).abs() < 1e-12);
        // Unit Bloch vector for pure states.
        assert!((x * x + zc * zc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reduced_matrix_is_hermitian_with_unit_trace() {
        let mut dd = DdPackage::new();
        let z = dd.zero_state(3).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 2).unwrap();
        let s = dd.apply_gate(s, gates::t(), &[Control::pos(2)], 1).unwrap();
        let s = dd.apply_gate(s, gates::rx(0.4), &[], 0).unwrap();
        for q in 0..3 {
            let rho = dd.reduced_density_matrix(s, q);
            assert!((rho[0][0].re + rho[1][1].re - 1.0).abs() < 1e-12, "trace");
            assert!(rho[0][1].approx_eq(rho[1][0].conj(), 1e-12), "hermitian");
            assert!(rho[0][0].im.abs() < 1e-12 && rho[1][1].im.abs() < 1e-12);
        }
    }
}
