//! Probability-memoized batch sampling over a fixed state DD.
//!
//! [`DdPackage::sample_once`](crate::DdPackage::sample_once) recomputes
//! `|w₁|²` of the 1-child weight at every node on every shot — a complex
//! table read plus two multiplications per level per shot. When many shots
//! are drawn from the *same* diagram (the common shot-engine regimes), that
//! work is invariant across shots. A [`SamplingTableau`] hoists it: one
//! post-order pass over the reachable nodes flattens the diagram into a
//! compact array of `(variable, P(1-branch), child indices)` records, and
//! each subsequent shot is a pure index walk — no unique-table, arena, or
//! complex-table access, one uniform draw and one `Vec` read per level.
//!
//! The tableau borrows nothing from the package: it is a self-contained
//! snapshot, so shots can be drawn long after (or while) the package mutates
//! — the non-destructive repeated sampling the paper highlights in §III-B,
//! made batch-friendly.

use crate::package::DdPackage;
use crate::traverse::Traversable;
use crate::types::VecEdge;
use qdd_complex::FxHashMap;
use rand::Rng;

/// Compact index of a tableau node; `TERMINAL` marks the walk's end.
const TERMINAL: u32 = u32::MAX;

/// One flattened node: everything a sampling walk needs, in 16 bytes.
#[derive(Copy, Clone, Debug)]
struct TabNode {
    /// Probability of the `|1⟩` branch — `|w₁|²` under L2 normalization.
    p1: f64,
    /// Tableau indices of the `|0⟩` / `|1⟩` children (`TERMINAL` ends the
    /// walk; a zero-stub child is also `TERMINAL` but carries `p = 0`, so
    /// it is never taken).
    children: [u32; 2],
    /// The node's qubit — the bit set in the sampled index on a `|1⟩` step.
    var: u8,
}

/// A frozen, memoized view of one state DD for repeated basis-state
/// sampling.
///
/// Build once with [`DdPackage::sampling_tableau`], then draw any number of
/// shots with [`sample_once`](SamplingTableau::sample_once) /
/// [`sample`](SamplingTableau::sample). Given the same RNG stream, the
/// drawn samples are **bit-identical** to
/// [`DdPackage::sample_once`](crate::DdPackage::sample_once): both consume
/// exactly one uniform per non-terminal node on the path and compare it
/// against the same `|w₁|²`.
#[derive(Clone, Debug)]
pub struct SamplingTableau {
    nodes: Vec<TabNode>,
    /// Entry point of every walk (`TERMINAL` for scalar/zero states).
    root: u32,
}

impl SamplingTableau {
    /// The number of distinct nodes captured from the diagram.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Draws one basis state (big-endian, bit `q` ↔ qubit `q`) by a
    /// randomized root→terminal walk over the memoized records.
    pub fn sample_once<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut index = 0u64;
        let mut at = self.root;
        while at != TERMINAL {
            let n = self.nodes[at as usize];
            if rng.gen::<f64>() < n.p1 {
                index |= 1 << n.var;
                at = n.children[1];
            } else {
                at = n.children[0];
            }
        }
        index
    }

    /// Draws `shots` samples into a basis-index → count histogram.
    pub fn sample<R: Rng + ?Sized>(&self, shots: u64, rng: &mut R) -> FxHashMap<u64, u64> {
        let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
        self.sample_into(shots, rng, &mut counts);
        counts
    }

    /// Draws `shots` samples, accumulating into an existing histogram.
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        shots: u64,
        rng: &mut R,
        counts: &mut FxHashMap<u64, u64>,
    ) {
        for _ in 0..shots {
            *counts.entry(self.sample_once(rng)).or_insert(0) += 1;
        }
    }
}

impl DdPackage {
    /// Flattens the diagram under `state` into a [`SamplingTableau`]: one
    /// post-order pass computes every reachable node's 1-branch probability
    /// `|w₁|²` so per-shot walks touch only the tableau.
    ///
    /// # Panics
    ///
    /// Panics unless the package uses
    /// [`VectorNormalization::L2`](crate::VectorNormalization::L2) — local
    /// weights are only probability amplitudes under the L2 rule.
    pub fn sampling_tableau(&self, state: VecEdge) -> SamplingTableau {
        assert!(
            self.config.vector_normalization == crate::normalize::VectorNormalization::L2,
            "sampling_tableau requires VectorNormalization::L2 (the ablation \
             rule does not keep local weights as probability amplitudes)"
        );
        if state.is_terminal() {
            return SamplingTableau {
                nodes: Vec::new(),
                root: TERMINAL,
            };
        }
        let mut nodes: Vec<TabNode> = Vec::new();
        // Arena slot → tableau index; the only hashing left, paid once at
        // build time instead of on every shot.
        let mut index_of: FxHashMap<u32, u32> = FxHashMap::default();
        self.visit_postorder(state, |id, n| {
            let child = |i: usize| {
                let c = n.children[i];
                if c.is_terminal() {
                    TERMINAL
                } else {
                    index_of[&c.node.raw()]
                }
            };
            let record = TabNode {
                p1: self.complex_value(n.children[1].weight).norm_sqr(),
                children: [child(0), child(1)],
                var: n.var,
            };
            index_of.insert(id.raw(), nodes.len() as u32);
            nodes.push(record);
        });
        let root = index_of[&state.node.raw()];
        SamplingTableau { nodes, root }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gates, Control};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn bell(dd: &mut DdPackage) -> VecEdge {
        let z = dd.zero_state(2).unwrap();
        let s = dd.apply_gate(z, gates::H, &[], 1).unwrap();
        dd.apply_gate(s, gates::X, &[Control::pos(1)], 0).unwrap()
    }

    #[test]
    fn tableau_matches_sample_once_bit_for_bit() {
        let mut dd = DdPackage::new();
        let mut s = dd.zero_state(6).unwrap();
        for q in 0..6 {
            s = dd.apply_gate(s, gates::ry(0.2 + q as f64), &[], q).unwrap();
            if q > 0 {
                s = dd
                    .apply_gate(s, gates::X, &[Control::pos(q - 1)], q)
                    .unwrap();
            }
        }
        let tab = dd.sampling_tableau(s);
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..500 {
            assert_eq!(tab.sample_once(&mut a), dd.sample_once(s, &mut b));
        }
    }

    #[test]
    fn tableau_captures_shared_nodes_once() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        let tab = dd.sampling_tableau(b);
        assert_eq!(tab.node_count(), dd.vec_node_count(b));
    }

    #[test]
    fn tableau_survives_package_mutation() {
        let mut dd = DdPackage::new();
        let b = bell(&mut dd);
        dd.inc_ref_vec(b);
        let tab = dd.sampling_tableau(b);
        // Mutate the package heavily after the snapshot.
        for q in 0..2 {
            let _ = dd.apply_gate(b, gates::H, &[], q).unwrap();
        }
        dd.garbage_collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let counts = tab.sample(2000, &mut rng);
        assert!(counts.keys().all(|&k| k == 0b00 || k == 0b11));
        let c00 = *counts.get(&0).unwrap_or(&0) as f64;
        assert!((c00 / 2000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn terminal_state_samples_zero() {
        let dd = DdPackage::new();
        let tab = dd.sampling_tableau(VecEdge::ONE);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(tab.sample_once(&mut rng), 0);
        assert_eq!(tab.node_count(), 0);
    }
}
