//! Backward-compatibility pin for the matrix text format: a committed
//! `qdd-matrix v1` file — written before identity-skip edges existed, so
//! its identity structure is spelled out as dense per-level nodes and its
//! child references carry no `@var` annotations — must keep loading, and
//! must load to the *same canonical diagram* the current package builds
//! natively (the dense identity chains collapse into skip edges on read).
//!
//! To regenerate after an *intentional* format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p qdd-core --test matrix_v1_golden
//! ```

use qdd_core::{gates, Control, DdPackage, MatEdge, PackageConfig};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/qft3_dense_v1.qdd")
}

/// The pinned operator: the controlled-phase core of a 3-qubit QFT — two
/// long-range controlled gates (so the dense form carries real identity
/// chains) followed by a Hadamard on the middle qubit.
fn build_operator(dd: &mut DdPackage) -> MatEdge {
    let mut u = dd.identity(3).unwrap();
    for theta in [0.5, 0.25] {
        let g = dd
            .gate_dd(gates::phase(theta), &[Control::pos(2)], 0, 3)
            .unwrap();
        u = dd.mat_mat(g, u);
    }
    let h = dd.gate_dd(gates::H, &[], 1, 3).unwrap();
    dd.mat_mat(h, u)
}

/// Regenerates the golden by writing the operator from an identity-skip-off
/// package (whose diagram is fully dense) and downgrading the text to the
/// pre-skip `v1` dialect: the old header, and no `@var` annotations.
fn regenerate() -> String {
    let mut dense = DdPackage::with_config(PackageConfig {
        identity_skip: false,
        ..PackageConfig::default()
    });
    let op = build_operator(&mut dense);
    let mut buffer = Vec::new();
    dense.write_matrix(op, &mut buffer).unwrap();
    let v2 = String::from_utf8(buffer).unwrap();
    let mut out = String::with_capacity(v2.len());
    for line in v2.lines() {
        if line == "qdd-matrix v2" {
            out.push_str("qdd-matrix v1\n");
            continue;
        }
        // Strip `@var` suffixes from node-reference tokens.
        let stripped: Vec<&str> = line
            .split(' ')
            .map(|tok| tok.split_once('@').map_or(tok, |(id, _)| id))
            .collect();
        out.push_str(&stripped.join(" "));
        out.push('\n');
    }
    out
}

#[test]
fn pinned_v1_matrix_golden_still_loads() {
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, regenerate()).unwrap();
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {} ({e}); run with UPDATE_GOLDEN=1", path.display())
    });
    assert!(
        text.starts_with("qdd-matrix v1\n"),
        "golden must stay a v1 file"
    );
    assert!(!text.contains('@'), "golden must stay annotation-free");

    let mut dd = DdPackage::new();
    let loaded = dd.read_matrix(text.as_bytes()).unwrap();
    let native = build_operator(&mut dd);
    // Loading collapses the file's dense identity chains, landing on the
    // exact canonical diagram of the natively built operator.
    assert_eq!(loaded, native, "v1 golden must load to the native diagram");

    let a = dd.to_dense_matrix(loaded, 3);
    let b = dd.to_dense_matrix(native, 3);
    for i in 0..8 {
        for j in 0..8 {
            assert!(a[i][j].approx_eq(b[i][j], 1e-12), "({i},{j})");
        }
    }
}
