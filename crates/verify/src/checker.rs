//! The equivalence checker.

use crate::error::VerifyError;
use crate::result::{Counterexample, Equivalence, EquivalenceReport, Strategy};
use qdd_circuit::{GateApplication, Operation, QuantumCircuit};
use qdd_core::{DdPackage, Limits, MatEdge, PackageConfig};

/// Default live-node estimate that triggers an intermediate garbage
/// collection between gate applications. Checking builds operator (4-ary)
/// diagrams, so this sits well below the simulator's default threshold.
const DEFAULT_GC_THRESHOLD: usize = 500_000;

/// One primitive step of a flattened circuit.
#[derive(Clone, Debug)]
enum Flat {
    Gate(GateApplication),
    Barrier,
}

/// Checks circuit equivalence on decision diagrams.
///
/// A checker owns its [`DdPackage`]; reusing one checker across many checks
/// shares gate diagrams and cache entries.
///
/// The package's [`Limits`] apply to every check: node/complex budgets are
/// enforced during gate application, and a configured deadline is armed for
/// the duration of [`Self::check`]. Resource overruns surface as
/// [`VerifyError::Dd`].
///
/// With [`Self::set_threads`] ≥ 2, the construction strategy builds the two
/// system matrices **concurrently**: every gate operator is built once,
/// sequentially; the package is frozen into a shared base; two worker
/// overlays multiply their gate chains independently; and the results are
/// imported back into one overlay for the canonical comparison. The
/// *decision* (equivalent / phase / not) is the same as the sequential
/// path's on every input — only intermediate diagram residency differs.
#[derive(Debug)]
pub struct EquivalenceChecker {
    dd: DdPackage,
    threads: usize,
}

impl Default for EquivalenceChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl EquivalenceChecker {
    /// Creates a checker with a fresh, unlimited package (auto-GC at
    /// `DEFAULT_GC_THRESHOLD` live nodes).
    pub fn new() -> Self {
        Self::with_config(PackageConfig {
            limits: Limits {
                auto_gc_threshold: DEFAULT_GC_THRESHOLD,
                ..Limits::default()
            },
            ..PackageConfig::default()
        })
    }

    /// Creates a checker over an explicit package configuration — the hook
    /// for resource-governed verification.
    pub fn with_config(config: PackageConfig) -> Self {
        EquivalenceChecker {
            dd: DdPackage::with_config(config),
            threads: 1,
        }
    }

    /// Sets the worker-thread count for the construction strategy's two
    /// independent system-matrix builds (`0` = one per available CPU;
    /// effective parallelism is capped at 2 — one worker per circuit). The
    /// alternating strategies are inherently sequential and ignore this.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
    }

    /// Read access to the underlying package (for visualization of the
    /// working diagram).
    pub fn package(&self) -> &DdPackage {
        &self.dd
    }

    /// Checks whether `left` and `right` realize the same unitary.
    ///
    /// # Errors
    ///
    /// [`VerifyError::WidthMismatch`] for circuits of different sizes,
    /// [`VerifyError::NonUnitary`] if either circuit contains measurements,
    /// resets, or classically-conditioned gates.
    pub fn check(
        &mut self,
        left: &QuantumCircuit,
        right: &QuantumCircuit,
        strategy: Strategy,
    ) -> Result<EquivalenceReport, VerifyError> {
        if left.num_qubits() != right.num_qubits() {
            return Err(VerifyError::WidthMismatch {
                left: left.num_qubits(),
                right: right.num_qubits(),
            });
        }
        let n = left.num_qubits();
        let lflat = flatten(left, 0)?;
        let rflat = flatten(right, 1)?;
        self.dd.arm_deadline();
        let out = match strategy {
            Strategy::Construction => self.check_construction(&lflat, &rflat, n),
            _ => self.check_alternating(&lflat, &rflat, n, strategy),
        };
        self.dd.disarm_deadline();
        out
    }

    fn check_construction(
        &mut self,
        lflat: &[Flat],
        rflat: &[Flat],
        n: usize,
    ) -> Result<EquivalenceReport, VerifyError> {
        let mut trace = Vec::new();
        let (u1, u2) = if self.threads >= 2 {
            self.build_both_parallel(lflat, rflat, n, &mut trace)?
        } else {
            let u1 = build_system_matrix(&mut self.dd, lflat, n, &mut trace)?;
            self.dd.inc_ref_mat(u1);
            let u2 = build_system_matrix(&mut self.dd, rflat, n, &mut trace)?;
            self.dd.dec_ref_mat(u1);
            (u1, u2)
        };
        let peak = trace.iter().copied().max().unwrap_or(0);

        // Fast path: canonicity makes equal functionalities the identical
        // edge (Example 11). Beyond a handful of qubits, however, the two
        // independently built diagrams accumulate floating-point error past
        // the interning tolerance and stop being pointer-equal even for
        // equivalent circuits — so the slow path decides numerically on
        // `U₂† · U₁ ≈ e^{iθ}·I`.
        let mut counterexample = None;
        let result = if u1 == u2 {
            Equivalence::Equivalent
        } else if u1.node == u2.node {
            let w1 = self.dd.complex_value(u1.weight);
            let w2 = self.dd.complex_value(u2.weight);
            let ratio = w1 / w2;
            if (ratio.abs() - 1.0).abs() < 1e-9 {
                Equivalence::EquivalentUpToGlobalPhase { phase: ratio.arg() }
            } else {
                Equivalence::NotEquivalent
            }
        } else {
            let u2d = self.dd.adjoint_mat(u2);
            let m = self.dd.try_mat_mat(u2d, u1)?;
            match self.find_magnitude_deviation(m) {
                Some(cx) => {
                    counterexample = Some(cx);
                    Equivalence::NotEquivalent
                }
                None => {
                    let reference = self.dd.matrix_entry(m, 0, 0);
                    if reference.approx_eq(qdd_complex::Complex::ONE, 1e-9) {
                        Equivalence::Equivalent
                    } else {
                        Equivalence::EquivalentUpToGlobalPhase { phase: reference.arg() }
                    }
                }
            }
        };
        Ok(EquivalenceReport {
            result,
            strategy: Strategy::Construction,
            nodes_per_step: trace,
            peak_nodes: peak,
            applied_left: count_gates(lflat),
            applied_right: count_gates(rflat),
            counterexample,
        })
    }

    /// Parallel construction: prebuild every gate operator sequentially
    /// (deterministic interning), freeze the package into a shared base,
    /// build the two system matrices on independent worker overlays, then
    /// import both results into a fresh overlay of the same base for the
    /// canonical comparison. The checker keeps that overlay as its package,
    /// so follow-up checks stay warm.
    fn build_both_parallel(
        &mut self,
        lflat: &[Flat],
        rflat: &[Flat],
        n: usize,
        trace: &mut Vec<usize>,
    ) -> Result<(MatEdge, MatEdge), VerifyError> {
        for flat in [lflat, rflat] {
            for step in flat {
                let Flat::Gate(g) = step else { continue };
                self.dd.gate_dd(g.gate.matrix(), &g.controls, g.target, n)?;
            }
        }
        self.dd.disarm_deadline();
        let config = *self.dd.config();
        let base = std::mem::replace(&mut self.dd, DdPackage::with_config(config)).freeze();

        type Built = Result<(MatEdge, Vec<usize>, DdPackage), VerifyError>;
        let build = |flat: &[Flat]| -> Built {
            let mut dd = base.overlay();
            dd.arm_deadline();
            let mut trace = Vec::new();
            let u = build_system_matrix(&mut dd, flat, n, &mut trace);
            dd.disarm_deadline();
            Ok((u?, trace, dd))
        };
        // Workers inherit the caller's telemetry toggle and publish their
        // thread-local metrics into the process-wide merged registry on the
        // way out, so aggregate reports see both construction halves.
        let telemetry = qdd_telemetry::enabled();
        let run = |flat: &[Flat], worker: u32, name: &'static str| -> Built {
            qdd_telemetry::set_enabled(telemetry);
            if telemetry {
                qdd_telemetry::register_worker_name(worker, name);
            }
            let result = build(flat);
            qdd_telemetry::publish();
            result
        };
        let (left, right) = std::thread::scope(|scope| {
            let lh = scope.spawn(|| run(lflat, 1, "verify-left"));
            let rh = scope.spawn(|| run(rflat, 2, "verify-right"));
            (
                lh.join().expect("left construction worker panicked"),
                rh.join().expect("right construction worker panicked"),
            )
        });

        self.dd = base.overlay();
        self.dd.arm_deadline();
        let (lu, ltrace, ldd) = left?;
        let (ru, rtrace, rdd) = right?;
        let u1 = self.dd.import_mat_edge(&ldd, lu);
        self.dd.inc_ref_mat(u1);
        let u2 = self.dd.import_mat_edge(&rdd, ru);
        self.dd.dec_ref_mat(u1);
        trace.extend(ltrace);
        trace.extend(rtrace);
        Ok((u1, u2))
    }

    fn check_alternating(
        &mut self,
        lflat: &[Flat],
        rflat: &[Flat],
        n: usize,
        strategy: Strategy,
    ) -> Result<EquivalenceReport, VerifyError> {
        let lgates: Vec<&GateApplication> = lflat
            .iter()
            .filter_map(|f| match f {
                Flat::Gate(g) => Some(g),
                Flat::Barrier => None,
            })
            .collect();
        let m1 = lgates.len();
        let m2 = count_gates(rflat);

        let mut m = self.dd.identity(n)?;
        let mut trace = vec![self.dd.mat_node_count(m)];
        let mut i = 0usize; // applied left gates
        let mut j = 0usize; // applied right gates
        let mut r_cursor = 0usize; // position in rflat (includes barriers)

        // Applies the next left gate: m ← U_i · m.
        macro_rules! apply_left {
            () => {{
                let g = lgates[i];
                let gate = self.dd.gate_dd(g.gate.matrix(), &g.controls, g.target, n)?;
                m = self.dd.try_mat_mat(gate, m)?;
                i += 1;
                trace.push(self.dd.mat_node_count(m));
                self.maybe_gc(&mut [m]);
            }};
        }
        // Applies the next right gate (skipping barriers): m ← m · V_j†.
        macro_rules! apply_right {
            () => {{
                while matches!(rflat.get(r_cursor), Some(Flat::Barrier)) {
                    r_cursor += 1;
                }
                if let Some(Flat::Gate(g)) = rflat.get(r_cursor) {
                    let inv = g.gate.inverse();
                    let gate = self.dd.gate_dd(inv.matrix(), &g.controls, g.target, n)?;
                    m = self.dd.try_mat_mat(m, gate)?;
                    j += 1;
                    r_cursor += 1;
                    trace.push(self.dd.mat_node_count(m));
                    self.maybe_gc(&mut [m]);
                }
            }};
        }

        match strategy {
            Strategy::OneToOne => {
                while i < m1 || j < m2 {
                    if i < m1 {
                        apply_left!();
                    }
                    if j < m2 {
                        apply_right!();
                    }
                }
            }
            Strategy::Proportional => {
                while i < m1 {
                    apply_left!();
                    while j < m2 && j * m1 < i * m2 {
                        apply_right!();
                    }
                }
                while j < m2 {
                    apply_right!();
                }
            }
            Strategy::BarrierGuided => {
                while i < m1 {
                    apply_left!();
                    // Right side: everything up to and including the next
                    // barrier (Example 12).
                    loop {
                        match rflat.get(r_cursor) {
                            Some(Flat::Barrier) => {
                                r_cursor += 1;
                                break;
                            }
                            Some(Flat::Gate(_)) => apply_right!(),
                            None => break,
                        }
                    }
                }
                while j < m2 {
                    apply_right!();
                }
            }
            Strategy::Lookahead => {
                while i < m1 && j < m2 {
                    // Evaluate both candidates; keep the smaller diagram.
                    let lg = lgates[i];
                    let lgate =
                        self.dd
                            .gate_dd(lg.gate.matrix(), &lg.controls, lg.target, n)?;
                    let cand_left = self.dd.try_mat_mat(lgate, m)?;
                    let left_nodes = self.dd.mat_node_count(cand_left);

                    let mut peek = r_cursor;
                    while matches!(rflat.get(peek), Some(Flat::Barrier)) {
                        peek += 1;
                    }
                    let (cand_right, right_nodes) = if let Some(Flat::Gate(g)) = rflat.get(peek) {
                        let inv = g.gate.inverse();
                        let gate =
                            self.dd.gate_dd(inv.matrix(), &g.controls, g.target, n)?;
                        let c = self.dd.try_mat_mat(m, gate)?;
                        let nodes = self.dd.mat_node_count(c);
                        (Some((c, peek)), nodes)
                    } else {
                        (None, usize::MAX)
                    };

                    if left_nodes <= right_nodes {
                        m = cand_left;
                        i += 1;
                        trace.push(left_nodes);
                    } else if let Some((c, peek)) = cand_right {
                        m = c;
                        j += 1;
                        r_cursor = peek + 1;
                        trace.push(right_nodes);
                    }
                    self.maybe_gc(&mut [m]);
                }
                while i < m1 {
                    apply_left!();
                }
                while j < m2 {
                    apply_right!();
                }
            }
            Strategy::Construction => unreachable!("handled in check()"),
        }

        let peak = trace.iter().copied().max().unwrap_or(0);
        let id = self.dd.identity(n)?;
        let result = if m == id {
            Equivalence::Equivalent
        } else if m.node == id.node {
            let w = self.dd.complex_value(m.weight);
            if (w.abs() - 1.0).abs() < 1e-9 {
                Equivalence::EquivalentUpToGlobalPhase { phase: w.arg() }
            } else {
                Equivalence::NotEquivalent
            }
        } else {
            Equivalence::NotEquivalent
        };
        let counterexample = if result == Equivalence::NotEquivalent {
            self.find_magnitude_deviation(m)
        } else {
            None
        };
        Ok(EquivalenceReport {
            result,
            strategy,
            nodes_per_step: trace,
            peak_nodes: peak,
            applied_left: i,
            applied_right: j,
            counterexample,
        })
    }

    fn maybe_gc(&mut self, roots: &mut [MatEdge]) {
        maybe_gc(&mut self.dd, roots);
    }

    /// Finds a matrix entry deviating from `M[0][0] · δ_rc` — i.e. a
    /// witness that `M` is not the identity up to a global phase. Catches
    /// both magnitude deviations and phase-only deviations (e.g. `M = Z`).
    fn find_magnitude_deviation(&self, m: MatEdge) -> Option<Counterexample> {
        const TOL: f64 = 1e-9;
        let reference = self.dd.matrix_entry(m, 0, 0);
        fn rec(
            dd: &DdPackage,
            e: MatEdge,
            acc: qdd_complex::Complex,
            reference: qdd_complex::Complex,
            row: u64,
            col: u64,
        ) -> Option<Counterexample> {
            if e.is_zero() {
                // An all-zero block deviates iff it intersects the diagonal
                // (aligned blocks: iff row == col) and the reference phase
                // is non-zero.
                return if row == col && reference.abs() > TOL {
                    Some(Counterexample { row, col })
                } else {
                    None
                };
            }
            let acc = acc * dd.complex_value(e.weight);
            if e.is_terminal() {
                let expected = if row == col {
                    reference
                } else {
                    qdd_complex::Complex::ZERO
                };
                return if (acc - expected).abs() > TOL {
                    Some(Counterexample { row, col })
                } else {
                    None
                };
            }
            let node = dd.mnode(e.node);
            // Identity-skip edges may land strictly below `level - 1`; the
            // gap reads as `diag(sub, sub)` per skipped level. The
            // off-diagonal blocks are zero where row != col (never a
            // deviation), and both diagonal blocks are the same subproblem,
            // so descending straight to the node's own level — leaving the
            // skipped row/col bits at equal zeros — searches a
            // representative diagonal block without re-reading the weight.
            let half = node.var as usize;
            for (idx, child) in node.children.iter().enumerate() {
                let (bi, bj) = ((idx >> 1) as u64, (idx & 1) as u64);
                let r = row | (bi << half);
                let c = col | (bj << half);
                if let Some(cx) = rec(dd, *child, acc, reference, r, c) {
                    return Some(cx);
                }
            }
            None
        }
        rec(&self.dd, m, qdd_complex::Complex::ONE, reference, 0, 0)
    }
}

/// Builds the full system matrix of a flattened circuit, recording node
/// counts (Example 10/11's route). A free function so both the checker's
/// own package and the parallel path's worker overlays can drive it.
fn build_system_matrix(
    dd: &mut DdPackage,
    flat: &[Flat],
    n: usize,
    trace: &mut Vec<usize>,
) -> Result<MatEdge, VerifyError> {
    let mut u = dd.identity(n)?;
    for step in flat {
        let Flat::Gate(g) = step else { continue };
        let gate = dd.gate_dd(g.gate.matrix(), &g.controls, g.target, n)?;
        u = dd.try_mat_mat(gate, u)?;
        trace.push(dd.mat_node_count(u));
        maybe_gc(dd, &mut [u]);
    }
    Ok(u)
}

fn maybe_gc(dd: &mut DdPackage, roots: &mut [MatEdge]) {
    if !dd.wants_auto_gc() {
        return;
    }
    for r in roots.iter() {
        dd.inc_ref_mat(*r);
    }
    dd.garbage_collect();
    for r in roots.iter() {
        dd.dec_ref_mat(*r);
    }
}

fn count_gates(flat: &[Flat]) -> usize {
    flat.iter()
        .filter(|f| matches!(f, Flat::Gate(_)))
        .count()
}

/// Flattens a circuit into primitive gates and barriers.
fn flatten(qc: &QuantumCircuit, which: usize) -> Result<Vec<Flat>, VerifyError> {
    let mut out = Vec::with_capacity(qc.len());
    for (op_index, op) in qc.ops().iter().enumerate() {
        match op {
            Operation::Barrier => out.push(Flat::Barrier),
            Operation::Gate(g) if g.condition.is_none() => out.push(Flat::Gate(g.clone())),
            Operation::Swap { .. } => {
                for g in op.to_gate_sequence().expect("swap is unitary") {
                    out.push(Flat::Gate(g));
                }
            }
            _ => {
                return Err(VerifyError::NonUnitary {
                    circuit: which,
                    op_index,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_circuit::{compile, library, QuantumCircuit};

    const ALL_STRATEGIES: [Strategy; 5] = [
        Strategy::Construction,
        Strategy::OneToOne,
        Strategy::Proportional,
        Strategy::BarrierGuided,
        Strategy::Lookahead,
    ];

    /// Paper Example 11: the QFT and its compiled form yield the same
    /// canonical diagram — equivalent under every strategy.
    #[test]
    fn qft_vs_compiled_equivalent_under_all_strategies() {
        let qft = library::qft(3, true);
        let compiled = compile::compiled_qft(3);
        for strategy in ALL_STRATEGIES {
            let mut checker = EquivalenceChecker::new();
            let report = checker.check(&qft, &compiled, strategy).unwrap();
            assert!(
                report.result.is_equivalent(),
                "{strategy}: {report}"
            );
        }
    }

    /// Paper Example 12: the barrier-guided alternating check stays near
    /// the identity — far below the full-construction peak.
    #[test]
    fn alternating_peak_is_below_construction_peak() {
        let qft = library::qft(3, true);
        let compiled = compile::compiled_qft(3);
        let mut checker = EquivalenceChecker::new();
        let full = checker.check(&qft, &compiled, Strategy::Construction).unwrap();
        let mut checker = EquivalenceChecker::new();
        let alt = checker.check(&qft, &compiled, Strategy::BarrierGuided).unwrap();
        assert!(
            alt.peak_nodes < full.peak_nodes,
            "alternating {} vs construction {}",
            alt.peak_nodes,
            full.peak_nodes
        );
    }

    #[test]
    fn detects_single_gate_difference() {
        let good = library::ghz(4);
        let mut bad = library::ghz(4);
        bad.z(2); // extra phase flip
        for strategy in ALL_STRATEGIES {
            let mut checker = EquivalenceChecker::new();
            let report = checker.check(&good, &bad, strategy).unwrap();
            assert_eq!(report.result, Equivalence::NotEquivalent, "{strategy}");
            let cx = report.counterexample.expect("witness");
            // The extra Z makes G'†G = Z — a phase-only deviation that the
            // witness search must still localize (some diagonal entry whose
            // phase differs from M[0][0]).
            assert!(cx.row < 16 && cx.col < 16);
        }
    }

    /// With identity-skip edges, the miscompare diagram `U₂†·U₁` for an
    /// extra X on q0 in a 5-qubit register is a single node at the *bottom*
    /// level, reached through a 4-level skip. The witness search must map
    /// that node's branches to bit 0 — not to the bit of the level the
    /// recursion happens to be at — so the counterexample coordinates stay
    /// meaningful.
    #[test]
    fn counterexample_coordinates_respect_skip_edges() {
        let empty = QuantumCircuit::new(5);
        let mut with_x = QuantumCircuit::new(5);
        with_x.x(0);
        let mut checker = EquivalenceChecker::new();
        let report = checker
            .check(&empty, &with_x, Strategy::Construction)
            .unwrap();
        assert_eq!(report.result, Equivalence::NotEquivalent);
        let cx = report.counterexample.expect("witness");
        assert_eq!((cx.row, cx.col), (0, 1), "X on q0 deviates at (0, 1)");
    }

    #[test]
    fn global_phase_is_reported_as_phase_equivalence() {
        let mut a = QuantumCircuit::new(1);
        a.x(0);
        let mut b = QuantumCircuit::new(1);
        // Y = i·X·Z up to phase: Z then Y equals i·X.
        b.z(0).y(0);
        let mut checker = EquivalenceChecker::new();
        let report = checker.check(&a, &b, Strategy::Construction).unwrap();
        match report.result {
            Equivalence::EquivalentUpToGlobalPhase { phase } => {
                assert!((phase.abs() - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
            }
            other => panic!("expected phase equivalence, got {other:?}"),
        }
    }

    #[test]
    fn width_mismatch_rejected() {
        let a = library::ghz(2);
        let b = library::ghz(3);
        let mut checker = EquivalenceChecker::new();
        assert!(matches!(
            checker.check(&a, &b, Strategy::OneToOne),
            Err(VerifyError::WidthMismatch { left: 2, right: 3 })
        ));
    }

    #[test]
    fn non_unitary_rejected() {
        let mut a = QuantumCircuit::new(1);
        a.add_creg("c", 1);
        a.h(0).measure(0, 0);
        let b = {
            let mut qc = QuantumCircuit::new(1);
            qc.h(0);
            qc
        };
        let mut checker = EquivalenceChecker::new();
        assert!(matches!(
            checker.check(&a, &b, Strategy::OneToOne),
            Err(VerifyError::NonUnitary { circuit: 0, op_index: 1 })
        ));
    }

    #[test]
    fn circuit_equals_itself() {
        let qc = library::random_circuit(4, 20, 13);
        for strategy in ALL_STRATEGIES {
            let mut checker = EquivalenceChecker::new();
            let report = checker.check(&qc, &qc, strategy).unwrap();
            assert_eq!(report.result, Equivalence::Equivalent, "{strategy}");
        }
    }

    #[test]
    fn swap_decomposition_is_equivalent() {
        let mut a = QuantumCircuit::new(3);
        a.swap(0, 2);
        let mut b = QuantumCircuit::new(3);
        b.cx(0, 2).cx(2, 0).cx(0, 2);
        let mut checker = EquivalenceChecker::new();
        let report = checker.check(&a, &b, Strategy::OneToOne).unwrap();
        assert_eq!(report.result, Equivalence::Equivalent);
    }

    #[test]
    fn report_counts_applied_gates() {
        let qft = library::qft(3, false);
        let mut checker = EquivalenceChecker::new();
        let report = checker.check(&qft, &qft, Strategy::OneToOne).unwrap();
        assert_eq!(report.applied_left, qft.gate_count());
        assert_eq!(report.applied_right, qft.gate_count());
    }

    #[test]
    fn node_budget_surfaces_as_dd_error() {
        let config = PackageConfig {
            limits: Limits {
                max_nodes: Some(8),
                ..Limits::default()
            },
            ..PackageConfig::default()
        };
        let mut checker = EquivalenceChecker::with_config(config);
        let qft = library::qft(5, true);
        let err = checker
            .check(&qft, &qft, Strategy::Construction)
            .unwrap_err();
        assert!(matches!(
            err,
            VerifyError::Dd(qdd_core::DdError::ResourceExhausted { .. })
        ));
    }

    #[test]
    fn deadline_zero_aborts_check() {
        let config = PackageConfig {
            limits: Limits {
                deadline: Some(std::time::Duration::ZERO),
                ..Limits::default()
            },
            ..PackageConfig::default()
        };
        let mut checker = EquivalenceChecker::with_config(config);
        let qft = library::qft(5, true);
        let err = checker
            .check(&qft, &qft, Strategy::OneToOne)
            .unwrap_err();
        assert!(matches!(
            err,
            VerifyError::Dd(qdd_core::DdError::DeadlineExceeded { .. })
        ));
    }

    /// The parallel construction path must reach the same decision as the
    /// sequential one on equivalent, phase-equivalent, and non-equivalent
    /// pairs — and a checker must stay usable for further checks after the
    /// freeze/overlay swap.
    #[test]
    fn parallel_construction_agrees_with_sequential() {
        let mut phase_b = QuantumCircuit::new(1);
        phase_b.z(0).y(0);
        let mut phase_a = QuantumCircuit::new(1);
        phase_a.x(0);
        let mut broken = library::ghz(4);
        broken.z(2);
        let pairs = [
            (library::qft(3, true), compile::compiled_qft(3)),
            (library::ghz(4), broken),
            (phase_a, phase_b),
            (library::random_circuit(4, 20, 13), library::random_circuit(4, 20, 13)),
        ];
        let mut par = EquivalenceChecker::new();
        par.set_threads(2);
        for (a, b) in &pairs {
            let mut seq = EquivalenceChecker::new();
            let s = seq.check(a, b, Strategy::Construction).unwrap();
            let p = par.check(a, b, Strategy::Construction).unwrap();
            assert_eq!(
                std::mem::discriminant(&s.result),
                std::mem::discriminant(&p.result),
                "decision diverged: sequential {:?} vs parallel {:?}",
                s.result,
                p.result
            );
            assert_eq!(s.applied_left, p.applied_left);
            assert_eq!(s.applied_right, p.applied_right);
            if s.result == Equivalence::NotEquivalent {
                assert!(p.counterexample.is_some());
            }
        }
    }

    #[test]
    fn inverse_circuit_composition_is_identity() {
        let qc = library::random_circuit(3, 15, 7);
        let inv = qc.inverse().unwrap();
        let mut composed = QuantumCircuit::new(3);
        composed.extend(&qc);
        composed.extend(&inv);
        let empty = QuantumCircuit::new(3); // identity
        let mut checker = EquivalenceChecker::new();
        let report = checker
            .check(&composed, &empty, Strategy::Construction)
            .unwrap();
        assert!(report.result.is_equivalent());
    }
}
