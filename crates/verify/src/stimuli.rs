//! Simulation-based (random-stimuli) equivalence checking.
//!
//! Constructing full system matrices can be expensive even on diagrams;
//! running both circuits on a handful of random basis-state inputs and
//! comparing the output states catches almost every real-world
//! non-equivalence at simulation cost (the complementary technique in the
//! QCEC tool the paper points to in Example 15). Disagreement on any
//! stimulus is a definitive "not equivalent"; agreement on all of them is
//! strong — but not conclusive — evidence of equivalence.

use crate::error::VerifyError;
use qdd_circuit::{Operation, QuantumCircuit};
use qdd_core::{DdPackage, VecEdge};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Outcome of a random-stimuli comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct StimuliReport {
    /// `false` is definitive; `true` means no disagreement was found.
    pub probably_equivalent: bool,
    /// Number of stimuli actually run (stops early on disagreement).
    pub stimuli_run: usize,
    /// The smallest output fidelity observed.
    pub min_fidelity: f64,
    /// The basis-state input that exposed a difference, if any.
    pub witness: Option<u64>,
}

/// Runs `left` and `right` on `count` random computational-basis inputs and
/// compares the output states by fidelity.
///
/// # Errors
///
/// Same preconditions as
/// [`EquivalenceChecker::check`](crate::EquivalenceChecker::check):
/// matching widths and unitary-only circuits.
pub fn simulate_equivalence(
    left: &QuantumCircuit,
    right: &QuantumCircuit,
    count: usize,
    seed: u64,
) -> Result<StimuliReport, VerifyError> {
    if left.num_qubits() != right.num_qubits() {
        return Err(VerifyError::WidthMismatch {
            left: left.num_qubits(),
            right: right.num_qubits(),
        });
    }
    let n = left.num_qubits();
    validate_unitary(left, 0)?;
    validate_unitary(right, 1)?;

    let mut dd = DdPackage::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut min_fidelity = 1.0f64;
    let mut run = 0usize;
    for _ in 0..count {
        let input: u64 = if n >= 64 { rng.gen() } else { rng.gen_range(0..(1u64 << n)) };
        let start = dd.basis_state(n, input)?;
        let out_l = apply_all(&mut dd, left, start)?;
        let out_r = apply_all(&mut dd, right, start)?;
        run += 1;
        let f = dd.fidelity(out_l, out_r);
        min_fidelity = min_fidelity.min(f);
        if f < 1.0 - 1e-9 {
            return Ok(StimuliReport {
                probably_equivalent: false,
                stimuli_run: run,
                min_fidelity,
                witness: Some(input),
            });
        }
    }
    Ok(StimuliReport {
        probably_equivalent: true,
        stimuli_run: run,
        min_fidelity,
        witness: None,
    })
}

fn validate_unitary(qc: &QuantumCircuit, which: usize) -> Result<(), VerifyError> {
    for (op_index, op) in qc.ops().iter().enumerate() {
        if !op.is_unitary() && !matches!(op, Operation::Barrier) {
            return Err(VerifyError::NonUnitary { circuit: which, op_index });
        }
    }
    Ok(())
}

fn apply_all(
    dd: &mut DdPackage,
    qc: &QuantumCircuit,
    start: VecEdge,
) -> Result<VecEdge, VerifyError> {
    let mut s = start;
    for op in qc.ops() {
        if matches!(op, Operation::Barrier) {
            continue;
        }
        for g in op.to_gate_sequence().expect("validated unitary") {
            s = dd.apply_gate(s, g.gate.matrix(), &g.controls, g.target)?;
        }
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_circuit::{compile, library};

    #[test]
    fn compiled_qft_passes_stimuli() {
        let qft = library::qft(4, true);
        let compiled = compile::compiled_qft(4);
        let report = simulate_equivalence(&qft, &compiled, 16, 3).unwrap();
        assert!(report.probably_equivalent);
        assert!(report.min_fidelity > 1.0 - 1e-9);
        assert_eq!(report.stimuli_run, 16);
    }

    #[test]
    fn broken_circuit_caught_with_witness() {
        let good = library::ghz(4);
        let mut bad = library::ghz(4);
        bad.x(0);
        let report = simulate_equivalence(&good, &bad, 16, 3).unwrap();
        assert!(!report.probably_equivalent);
        assert!(report.witness.is_some());
        assert!(report.stimuli_run <= 16);
    }

    #[test]
    fn phase_only_difference_slips_past_basis_stimuli() {
        // A global phase is invisible to fidelity — stimulus checking
        // correctly reports "probably equivalent".
        let mut a = qdd_circuit::QuantumCircuit::new(2);
        a.x(0);
        let mut b = qdd_circuit::QuantumCircuit::new(2);
        b.z(0).y(0); // i·X
        let report = simulate_equivalence(&a, &b, 8, 1).unwrap();
        assert!(report.probably_equivalent);
    }

    #[test]
    fn width_mismatch_rejected() {
        let a = library::ghz(2);
        let b = library::ghz(3);
        assert!(simulate_equivalence(&a, &b, 4, 1).is_err());
    }

    #[test]
    fn measurement_rejected() {
        let mut a = qdd_circuit::QuantumCircuit::new(1);
        a.add_creg("c", 1);
        a.measure(0, 0);
        let b = qdd_circuit::QuantumCircuit::new(1);
        assert!(matches!(
            simulate_equivalence(&a, &b, 4, 1),
            Err(VerifyError::NonUnitary { circuit: 0, op_index: 0 })
        ));
    }
}
