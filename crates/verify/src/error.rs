//! Verification error type.

use std::error::Error;
use std::fmt;

/// Errors from equivalence checking.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// The circuits act on different numbers of qubits; the tool "expects
    /// both algorithms/circuits to have the same number of qubits" (§IV-C).
    WidthMismatch {
        /// Qubits of the left circuit.
        left: usize,
        /// Qubits of the right circuit.
        right: usize,
    },
    /// A circuit contains a non-unitary operation (measurement, reset,
    /// classically-controlled gate) — not supported for verification
    /// "due to their non-unitary nature" (§IV-C).
    NonUnitary {
        /// 0 = left circuit, 1 = right circuit.
        circuit: usize,
        /// Index of the offending operation.
        op_index: usize,
    },
    /// The underlying DD package rejected an operation.
    Dd(qdd_core::DdError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::WidthMismatch { left, right } => {
                write!(f, "circuits differ in width: {left} vs {right} qubits")
            }
            VerifyError::NonUnitary { circuit, op_index } => {
                let side = if *circuit == 0 { "left" } else { "right" };
                write!(f, "{side} circuit has a non-unitary operation at index {op_index}")
            }
            VerifyError::Dd(e) => write!(f, "{e}"),
        }
    }
}

impl Error for VerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerifyError::Dd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<qdd_core::DdError> for VerifyError {
    fn from(e: qdd_core::DdError) -> Self {
        VerifyError::Dd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_identifies_side() {
        let e = VerifyError::NonUnitary { circuit: 1, op_index: 3 };
        assert!(e.to_string().contains("right circuit"));
        let e = VerifyError::WidthMismatch { left: 2, right: 3 };
        assert!(e.to_string().contains("2 vs 3"));
    }
}
