//! Verification verdicts and reports.

use std::fmt;

/// How the alternating product is scheduled (paper ref \[20\]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Build both full system matrices, compare the canonical root edges
    /// (Example 10/11).
    Construction,
    /// Alternate strictly one gate from each circuit.
    OneToOne,
    /// Keep the applied-gate counts proportional to the circuit lengths —
    /// the natural choice when one circuit is a compiled (longer) version
    /// of the other.
    Proportional,
    /// One gate from the left circuit, then right-circuit gates up to the
    /// next barrier — Example 12's schedule for Fig. 5(b)'s barriers.
    BarrierGuided,
    /// Greedy: apply whichever side currently yields the smaller diagram.
    Lookahead,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Strategy::Construction => "construction",
            Strategy::OneToOne => "one-to-one",
            Strategy::Proportional => "proportional",
            Strategy::BarrierGuided => "barrier-guided",
            Strategy::Lookahead => "lookahead",
        };
        write!(f, "{name}")
    }
}

/// The verdict of an equivalence check.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Equivalence {
    /// The system matrices are identical.
    Equivalent,
    /// Identical up to a global phase `e^{iθ}` (observationally
    /// indistinguishable).
    EquivalentUpToGlobalPhase {
        /// The phase angle θ.
        phase: f64,
    },
    /// The circuits differ; see
    /// [`EquivalenceReport::counterexample`].
    NotEquivalent,
}

impl Equivalence {
    /// `true` for both flavours of equivalence.
    pub fn is_equivalent(self) -> bool {
        !matches!(self, Equivalence::NotEquivalent)
    }
}

/// A matrix entry witnessing non-equivalence: `M[row][col]` of the final
/// product deviates from the identity.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Counterexample {
    /// Row (output basis state).
    pub row: u64,
    /// Column (input basis state).
    pub col: u64,
}

/// Full record of one equivalence check.
#[derive(Clone, Debug, PartialEq)]
pub struct EquivalenceReport {
    /// The verdict.
    pub result: Equivalence,
    /// The schedule used.
    pub strategy: Strategy,
    /// Node count of the working diagram after every multiplication.
    pub nodes_per_step: Vec<usize>,
    /// Peak node count over the whole check (the paper's Example 12
    /// metric: ≤ 9 for the QFT pair vs 21 for full construction).
    pub peak_nodes: usize,
    /// Primitive gates applied from the left circuit.
    pub applied_left: usize,
    /// Primitive gates applied from the right circuit.
    pub applied_right: usize,
    /// For [`Equivalence::NotEquivalent`]: a deviating matrix entry.
    pub counterexample: Option<Counterexample>,
}

impl fmt::Display for EquivalenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = match self.result {
            Equivalence::Equivalent => "equivalent".to_string(),
            Equivalence::EquivalentUpToGlobalPhase { phase } => {
                format!("equivalent up to global phase {phase:.4}")
            }
            Equivalence::NotEquivalent => "NOT equivalent".to_string(),
        };
        write!(
            f,
            "{verdict} [{} strategy, peak {} nodes, {}+{} gates applied]",
            self.strategy, self.peak_nodes, self.applied_left, self.applied_right
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_classification() {
        assert!(Equivalence::Equivalent.is_equivalent());
        assert!(Equivalence::EquivalentUpToGlobalPhase { phase: 0.3 }.is_equivalent());
        assert!(!Equivalence::NotEquivalent.is_equivalent());
    }

    #[test]
    fn strategy_display() {
        assert_eq!(Strategy::BarrierGuided.to_string(), "barrier-guided");
        assert_eq!(Strategy::Construction.to_string(), "construction");
    }

    #[test]
    fn report_display_mentions_peaks() {
        let r = EquivalenceReport {
            result: Equivalence::Equivalent,
            strategy: Strategy::Proportional,
            nodes_per_step: vec![1, 2, 3],
            peak_nodes: 9,
            applied_left: 7,
            applied_right: 21,
            counterexample: None,
        };
        let s = r.to_string();
        assert!(s.contains("peak 9 nodes"));
        assert!(s.contains("7+21"));
    }
}
