//! Equivalence checking of quantum circuits with decision diagrams
//! (paper §III-C / §IV-C).
//!
//! Two circuits are equivalent iff their system matrices agree. Because
//! canonical decision diagrams make that comparison a root-edge check, two
//! verification routes open up:
//!
//! * **Construction** ([`Strategy::Construction`]): build both system
//!   matrices by multiplying gate DDs (Example 10/11) and compare the
//!   canonical edges.
//! * **Alternating** (the advanced scheme of paper ref \[20\] and
//!   Example 12): drive `G'† · G` toward the identity by interleaving
//!   gates from `G` (left multiplications) with inverted gates from `G'`
//!   (right multiplications). When the interleaving order is chosen well,
//!   the working diagram stays near the identity the whole time — the
//!   paper's 9-nodes-instead-of-21 observation. Orders implemented:
//!   [`Strategy::OneToOne`], [`Strategy::Proportional`],
//!   [`Strategy::BarrierGuided`] (exactly Example 12's "apply one gate
//!   from (a), then gates from (b) up to the next barrier"), and
//!   [`Strategy::Lookahead`].
//!
//! # Examples
//!
//! Verify the paper's QFT compilation (Fig. 5):
//!
//! ```
//! use qdd_circuit::{compile, library};
//! use qdd_verify::{Equivalence, EquivalenceChecker, Strategy};
//!
//! # fn main() -> Result<(), qdd_verify::VerifyError> {
//! let qft = library::qft(3, true);
//! let compiled = compile::compiled_qft(3);
//! let mut checker = EquivalenceChecker::new();
//! let report = checker.check(&qft, &compiled, Strategy::Proportional)?;
//! assert_eq!(report.result, Equivalence::Equivalent);
//! # Ok(())
//! # }
//! ```

mod checker;
mod error;
mod result;
mod stimuli;

pub use checker::EquivalenceChecker;
pub use error::VerifyError;
pub use result::{Equivalence, EquivalenceReport, Strategy};
pub use stimuli::{simulate_equivalence, StimuliReport};
