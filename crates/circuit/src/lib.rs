//! Quantum circuits: representation, parsing, generation, compilation.
//!
//! This crate provides the circuit substrate of the reproduced paper's tool:
//!
//! * [`QuantumCircuit`] — an in-memory circuit with gates, arbitrary
//!   (negative) controls, barriers, measurements, resets and
//!   classically-controlled operations;
//! * [`qasm`] — an OpenQASM 2.0 parser covering the `qelib1` gate set,
//!   user-defined gates, `barrier`, `measure`, `reset` and `if`-conditions
//!   (the tool's first input format);
//! * [`real`] — a RevLib `.real` parser for reversible circuits (the tool's
//!   second input format);
//! * [`library`] — generators for the algorithms the paper discusses (QFT,
//!   Bell/GHZ preparation, Grover, …);
//! * [`compile`] — the decompositions the paper applies in Fig. 5(b):
//!   SWAP → 3 CNOT and controlled-phase → `{P, CNOT}`;
//! * [`optimize`] — peephole passes (inverse-pair cancellation, phase
//!   merging) whose output the equivalence checker can re-verify.
//!
//! # Examples
//!
//! The paper's Fig. 1(c) circuit:
//!
//! ```
//! use qdd_circuit::QuantumCircuit;
//!
//! let mut g = QuantumCircuit::new(2);
//! g.h(1);
//! g.cx(1, 0);
//! assert_eq!(g.gate_count(), 2);
//! let qasm = g.to_qasm();
//! let reparsed = qdd_circuit::qasm::parse(&qasm).unwrap();
//! assert_eq!(reparsed.gate_count(), 2);
//! ```

pub mod compile;
pub mod optimize;
mod analysis;
mod circuit;
mod error;
mod gate;
pub mod library;
mod op;
pub mod qasm;
pub mod real;

pub use analysis::{MeasurementAnalysis, MeasurementRegime};
pub use circuit::{ClassicalRegister, QuantumCircuit, QuantumRegister};
pub use error::CircuitError;
pub use gate::StandardGate;
pub use op::{Condition, GateApplication, Operation};

// Re-export the control types: they are shared vocabulary with the DD layer.
pub use qdd_core::{Control, Polarity};
