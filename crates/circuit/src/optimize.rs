//! Peephole circuit optimization.
//!
//! Compilation flows like the paper's Fig. 5(b) produce redundancy
//! (adjacent inverse pairs, chains of phase gates); these passes clean it
//! up. Every rewrite preserves the unitary exactly — the integration tests
//! verify optimized circuits against their originals with the equivalence
//! checker, closing the loop the paper draws between compilation and
//! verification.

use crate::circuit::QuantumCircuit;
use crate::gate::StandardGate;
use crate::op::{GateApplication, Operation};

/// What an optimization run did.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OptimizeStats {
    /// Adjacent `g·g⁻¹` pairs removed (counting both gates).
    pub cancelled_gates: usize,
    /// Phase-family gates merged into a predecessor.
    pub merged_phases: usize,
    /// Identity gates (and zero-angle rotations) dropped.
    pub dropped_identities: usize,
    /// Fixed-point iterations used.
    pub passes: usize,
}

impl OptimizeStats {
    /// Total operations eliminated.
    pub fn total_removed(&self) -> usize {
        self.cancelled_gates + self.merged_phases + self.dropped_identities
    }
}

/// Runs the peephole passes to a fixed point and returns the optimized
/// circuit with statistics.
///
/// Barriers are kept and act as optimization fences (a gate never cancels
/// across a barrier — matching their breakpoint role in the paper's tool).
/// Measurements, resets, and conditioned gates are fences as well.
pub fn optimize(qc: &QuantumCircuit) -> (QuantumCircuit, OptimizeStats) {
    let mut span = qdd_telemetry::span("circuit.optimize");
    let mut stats = OptimizeStats::default();
    let mut ops: Vec<Operation> = qc.ops().to_vec();
    loop {
        stats.passes += 1;
        let before = ops.len();
        ops = drop_identities(ops, &mut stats);
        ops = cancel_and_merge(ops, &mut stats);
        if ops.len() == before || stats.passes > 64 {
            break;
        }
    }
    let mut out = QuantumCircuit::with_name(qc.num_qubits(), format!("{}_opt", qc.name()));
    for reg in qc.cregs() {
        out.add_creg(reg.name.clone(), reg.size);
    }
    for op in ops {
        out.append(op);
    }
    out.add_global_phase(qc.global_phase());
    span.field("passes", stats.passes);
    span.field("cancelled_gates", stats.cancelled_gates);
    span.field("merged_phases", stats.merged_phases);
    span.field("dropped_identities", stats.dropped_identities);
    span.field("ops_out", out.len());
    (out, stats)
}

const TOL: f64 = 1e-12;

fn is_identity_gate(g: &GateApplication) -> bool {
    if g.condition.is_some() {
        return false;
    }
    match g.gate {
        StandardGate::I => true,
        StandardGate::Phase(t) | StandardGate::Rx(t) | StandardGate::Ry(t)
        | StandardGate::Rz(t) => t.abs() < TOL,
        _ => false,
    }
}

fn drop_identities(ops: Vec<Operation>, stats: &mut OptimizeStats) -> Vec<Operation> {
    ops.into_iter()
        .filter(|op| match op {
            Operation::Gate(g) if is_identity_gate(g) => {
                stats.dropped_identities += 1;
                false
            }
            _ => true,
        })
        .collect()
}

/// `true` if the two gate applications act on the same target with the
/// same controls (gate parameters may differ).
fn same_site(a: &GateApplication, b: &GateApplication) -> bool {
    if a.target != b.target || a.condition.is_some() || b.condition.is_some() {
        return false;
    }
    let mut ca = a.controls.clone();
    let mut cb = b.controls.clone();
    ca.sort_unstable();
    cb.sort_unstable();
    ca == cb
}

/// `true` if `b` is the exact inverse of `a` (same site).
fn is_inverse_pair(a: &GateApplication, b: &GateApplication) -> bool {
    if !same_site(a, b) {
        return false;
    }
    match (a.gate, b.gate.inverse()) {
        (StandardGate::Phase(x), StandardGate::Phase(y))
        | (StandardGate::Rx(x), StandardGate::Rx(y))
        | (StandardGate::Ry(x), StandardGate::Ry(y))
        | (StandardGate::Rz(x), StandardGate::Rz(y)) => (x - y).abs() < TOL,
        (StandardGate::U(a1, a2, a3), StandardGate::U(b1, b2, b3)) => {
            (a1 - b1).abs() < TOL && (a2 - b2).abs() < TOL && (a3 - b3).abs() < TOL
        }
        (ga, gb) => ga == gb,
    }
}

/// The phase angle if the gate belongs to the diagonal phase family.
fn phase_of(g: StandardGate) -> Option<f64> {
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
    Some(match g {
        StandardGate::Phase(t) => t,
        StandardGate::Z => PI,
        StandardGate::S => FRAC_PI_2,
        StandardGate::Sdg => -FRAC_PI_2,
        StandardGate::T => FRAC_PI_4,
        StandardGate::Tdg => -FRAC_PI_4,
        _ => return None,
    })
}

/// `true` if the operation blocks reordering/cancellation on `qubits`.
fn is_fence(op: &Operation) -> bool {
    match op {
        Operation::Barrier | Operation::Measure { .. } | Operation::Reset { .. } => true,
        Operation::Gate(g) => g.condition.is_some(),
        Operation::Swap { .. } => false,
    }
}

fn cancel_and_merge(ops: Vec<Operation>, stats: &mut OptimizeStats) -> Vec<Operation> {
    let mut out: Vec<Operation> = Vec::with_capacity(ops.len());
    for op in ops {
        if is_fence(&op) {
            out.push(op);
            continue;
        }
        match (&op, out.last()) {
            // Adjacent self-cancelling SWAPs.
            (
                Operation::Swap { a, b, controls },
                Some(Operation::Swap { a: pa, b: pb, controls: pc }),
            ) if {
                let same_pair = (a == pa && b == pb) || (a == pb && b == pa);
                same_pair && controls == pc
            } =>
            {
                out.pop();
                stats.cancelled_gates += 2;
            }
            (Operation::Gate(g), Some(Operation::Gate(prev))) => {
                if is_inverse_pair(prev, g) {
                    out.pop();
                    stats.cancelled_gates += 2;
                } else if same_site(prev, g) {
                    if let (Some(tp), Some(tg)) = (phase_of(prev.gate), phase_of(g.gate)) {
                        // Merge the diagonal phase family: P(a)·P(b) = P(a+b).
                        let merged = StandardGate::Phase(tp + tg).simplified();
                        let controls = prev.controls.clone();
                        let target = prev.target;
                        out.pop();
                        stats.merged_phases += 1;
                        if !matches!(merged, StandardGate::I) {
                            out.push(Operation::Gate(GateApplication::new(
                                merged, controls, target,
                            )));
                        } else {
                            stats.dropped_identities += 1;
                        }
                    } else {
                        out.push(op);
                    }
                } else {
                    out.push(op);
                }
            }
            _ => out.push(op),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_inverse_pairs_cancel() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).h(0).cx(0, 1).cx(0, 1).t(1).tdg(1);
        let (opt, stats) = optimize(&qc);
        assert!(opt.is_empty(), "{opt}");
        assert_eq!(stats.cancelled_gates + stats.merged_phases * 2, 6);
    }

    #[test]
    fn rotation_inverse_pairs_cancel() {
        let mut qc = QuantumCircuit::new(1);
        qc.rx(0.7, 0).rx(-0.7, 0).rz(1.1, 0).rz(-1.1, 0);
        let (opt, _) = optimize(&qc);
        assert!(opt.is_empty());
    }

    #[test]
    fn phases_merge_into_named_gates() {
        use std::f64::consts::FRAC_PI_4;
        let mut qc = QuantumCircuit::new(1);
        qc.t(0).t(0); // T·T = S
        let (opt, stats) = optimize(&qc);
        assert_eq!(opt.len(), 1);
        match &opt.ops()[0] {
            Operation::Gate(g) => assert_eq!(g.gate, StandardGate::S),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(stats.merged_phases, 1);
        // P(π/4)·T†·S = T ... chains collapse fully:
        let mut qc = QuantumCircuit::new(1);
        qc.p(FRAC_PI_4, 0).tdg(0).s(0).sdg(0);
        let (opt, _) = optimize(&qc);
        assert!(opt.is_empty(), "{opt}");
    }

    #[test]
    fn controlled_phases_merge_only_on_same_site() {
        let mut qc = QuantumCircuit::new(3);
        qc.cp(0.3, 1, 0).cp(0.4, 1, 0).cp(0.5, 2, 0);
        let (opt, _) = optimize(&qc);
        assert_eq!(opt.len(), 2, "different control sites must not merge");
        match &opt.ops()[0] {
            Operation::Gate(g) => match g.gate {
                StandardGate::Phase(t) => assert!((t - 0.7).abs() < 1e-12),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn identities_and_zero_rotations_drop() {
        let mut qc = QuantumCircuit::new(1);
        qc.gate(StandardGate::I, vec![], 0).rx(0.0, 0).p(0.0, 0).x(0);
        let (opt, stats) = optimize(&qc);
        assert_eq!(opt.len(), 1);
        assert_eq!(stats.dropped_identities, 3);
    }

    #[test]
    fn barriers_fence_cancellation() {
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).barrier().h(0);
        let (opt, stats) = optimize(&qc);
        assert_eq!(opt.len(), 3, "H|barrier|H must survive");
        assert_eq!(stats.total_removed(), 0);
    }

    #[test]
    fn measurement_fences_cancellation() {
        let mut qc = QuantumCircuit::new(1);
        qc.add_creg("c", 1);
        qc.x(0).measure(0, 0).x(0);
        let (opt, _) = optimize(&qc);
        assert_eq!(opt.len(), 3);
    }

    #[test]
    fn swap_pairs_cancel() {
        let mut qc = QuantumCircuit::new(3);
        qc.swap(0, 2).swap(2, 0).swap(0, 1);
        let (opt, stats) = optimize(&qc);
        assert_eq!(opt.len(), 1);
        assert_eq!(stats.cancelled_gates, 2);
    }

    #[test]
    fn cascades_collapse_to_fixed_point() {
        // h x x h — the inner pair cancels, then the outer pair.
        let mut qc = QuantumCircuit::new(1);
        qc.h(0).x(0).x(0).h(0);
        let (opt, stats) = optimize(&qc);
        assert!(opt.is_empty());
        assert!(stats.passes >= 2);
    }

    #[test]
    fn cregs_preserved() {
        let mut qc = QuantumCircuit::new(1);
        qc.add_creg("c", 1);
        qc.h(0);
        let (opt, _) = optimize(&qc);
        assert_eq!(opt.num_clbits(), 1);
    }
}
