//! RevLib `.real` parsing — the second input format of the paper's tool.
//!
//! The `.real` format describes reversible circuits over Toffoli-family
//! gates. Supported elements:
//!
//! * header keys `.version`, `.numvars`, `.variables`, `.inputs`,
//!   `.outputs`, `.constants`, `.garbage` (the latter four are parsed and
//!   ignored — they don't affect the unitary);
//! * `.begin` … `.end` gate list with
//!   `t1` (NOT), `t2` (CNOT), `tN` (multi-controlled NOT),
//!   `fN` (multi-controlled SWAP / Fredkin),
//!   `v` / `v+` (controlled √X / its inverse);
//! * negative controls written with a `-` prefix (`t2 -a b`).
//!
//! The **first** declared variable is the most-significant qubit, matching
//! the big-endian convention of the paper.
//!
//! # Examples
//!
//! ```
//! let src = "\
//! .version 2.0
//! .numvars 3
//! .variables a b c
//! .begin
//! t1 a
//! t3 a b c
//! f2 b c
//! .end";
//! let qc = qdd_circuit::real::parse(src).unwrap();
//! assert_eq!(qc.num_qubits(), 3);
//! assert_eq!(qc.gate_count(), 3);
//! ```

use crate::circuit::QuantumCircuit;
use crate::error::CircuitError;
use crate::gate::StandardGate;
use crate::op::{GateApplication, Operation};
use qdd_core::Control;
use std::collections::HashMap;

/// Parses RevLib `.real` source into a [`QuantumCircuit`].
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] for malformed headers, unknown gates,
/// arity mismatches, and undeclared variables.
pub fn parse(src: &str) -> Result<QuantumCircuit, CircuitError> {
    let mut span = qdd_telemetry::span("circuit.parse_real");
    span.field("bytes", src.len());
    let mut numvars: Option<usize> = None;
    let mut var_index: HashMap<String, usize> = HashMap::new();
    let mut ops: Vec<Operation> = Vec::new();
    let mut in_body = false;
    let mut ended = false;

    for (lineno, raw) in src.lines().enumerate() {
        let line_number = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if ended {
            return Err(CircuitError::parse(line_number, "content after .end"));
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut parts = rest.split_whitespace();
            let key = parts.next().unwrap_or("");
            match key {
                "version" => {}
                "numvars" => {
                    let v: usize = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| CircuitError::parse(line_number, "bad .numvars"))?;
                    if v == 0 {
                        return Err(CircuitError::parse(line_number, ".numvars must be positive"));
                    }
                    numvars = Some(v);
                }
                "variables" => {
                    let n = numvars.ok_or_else(|| {
                        CircuitError::parse(line_number, ".variables before .numvars")
                    })?;
                    let names: Vec<&str> = parts.collect();
                    if names.len() != n {
                        return Err(CircuitError::parse(
                            line_number,
                            format!(".variables lists {} names, .numvars is {n}", names.len()),
                        ));
                    }
                    for (i, name) in names.iter().enumerate() {
                        // First variable = most significant qubit.
                        if var_index.insert(name.to_string(), n - 1 - i).is_some() {
                            return Err(CircuitError::parse(
                                line_number,
                                format!("variable `{name}` declared twice"),
                            ));
                        }
                    }
                }
                "inputs" | "outputs" | "constants" | "garbage" | "inputbus" | "outputbus"
                | "state" | "module" => {}
                "begin" => {
                    if var_index.is_empty() {
                        // Permit .begin with implicit x1..xN naming.
                        let n = numvars.ok_or_else(|| {
                            CircuitError::parse(line_number, ".begin before .numvars")
                        })?;
                        for i in 0..n {
                            var_index.insert(format!("x{}", i + 1), n - 1 - i);
                        }
                    }
                    in_body = true;
                }
                "end" => {
                    if !in_body {
                        return Err(CircuitError::parse(line_number, ".end before .begin"));
                    }
                    ended = true;
                }
                other => {
                    return Err(CircuitError::parse(
                        line_number,
                        format!("unknown directive `.{other}`"),
                    ))
                }
            }
            continue;
        }
        if !in_body {
            return Err(CircuitError::parse(line_number, "gate before .begin"));
        }
        ops.push(parse_gate_line(line, line_number, &var_index)?);
    }

    let n = numvars.ok_or_else(|| CircuitError::parse(1, "missing .numvars"))?;
    if in_body && !ended {
        return Err(CircuitError::parse(src.lines().count(), "missing .end"));
    }
    let mut qc = QuantumCircuit::with_name(n, "real");
    for op in ops {
        qc.append(op);
    }
    Ok(qc)
}

/// Parses a variable operand, handling the `-` negative-control prefix.
fn operand(
    token: &str,
    line: usize,
    vars: &HashMap<String, usize>,
) -> Result<(usize, bool), CircuitError> {
    let (name, negative) = match token.strip_prefix('-') {
        Some(rest) => (rest, true),
        None => (token, false),
    };
    let q = vars
        .get(name)
        .copied()
        .ok_or_else(|| CircuitError::parse(line, format!("unknown variable `{name}`")))?;
    Ok((q, negative))
}

fn parse_gate_line(
    line: &str,
    lineno: usize,
    vars: &HashMap<String, usize>,
) -> Result<Operation, CircuitError> {
    let mut parts = line.split_whitespace();
    let mnemonic = parts.next().expect("non-empty line");
    let operands: Vec<&str> = parts.collect();
    let resolved: Vec<(usize, bool)> = operands
        .iter()
        .map(|t| operand(t, lineno, vars))
        .collect::<Result<_, _>>()?;

    let to_controls = |slice: &[(usize, bool)]| -> Vec<Control> {
        slice
            .iter()
            .map(|&(q, neg)| if neg { Control::neg(q) } else { Control::pos(q) })
            .collect()
    };

    match mnemonic.as_bytes() {
        [b't', digits @ ..] if !digits.is_empty() => {
            let k: usize = mnemonic[1..]
                .parse()
                .map_err(|_| CircuitError::parse(lineno, format!("bad gate `{mnemonic}`")))?;
            if resolved.len() != k || k == 0 {
                return Err(CircuitError::parse(
                    lineno,
                    format!("`{mnemonic}` expects {k} operands, got {}", resolved.len()),
                ));
            }
            let (target, controls) = resolved.split_last().expect("k >= 1");
            if target.1 {
                return Err(CircuitError::parse(lineno, "target cannot be negated"));
            }
            Ok(Operation::Gate(GateApplication::new(
                StandardGate::X,
                to_controls(controls),
                target.0,
            )))
        }
        [b'f', digits @ ..] if !digits.is_empty() => {
            let k: usize = mnemonic[1..]
                .parse()
                .map_err(|_| CircuitError::parse(lineno, format!("bad gate `{mnemonic}`")))?;
            if resolved.len() != k || k < 2 {
                return Err(CircuitError::parse(
                    lineno,
                    format!("`{mnemonic}` expects {k} operands, got {}", resolved.len()),
                ));
            }
            // The first k-2 operands are controls; the last two are swapped.
            let ctrl_slice = &resolved[..k - 2];
            let a = resolved[k - 2];
            let b = resolved[k - 1];
            if a.1 || b.1 {
                return Err(CircuitError::parse(lineno, "swapped lines cannot be negated"));
            }
            Ok(Operation::Swap {
                a: a.0,
                b: b.0,
                controls: to_controls(ctrl_slice),
            })
        }
        _ if mnemonic == "v" || mnemonic == "v+" => {
            if resolved.is_empty() {
                return Err(CircuitError::parse(lineno, format!("`{mnemonic}` needs operands")));
            }
            let (target, controls) = resolved.split_last().expect("non-empty");
            if target.1 {
                return Err(CircuitError::parse(lineno, "target cannot be negated"));
            }
            let gate = if mnemonic == "v" {
                StandardGate::Sx
            } else {
                StandardGate::Sxdg
            };
            Ok(Operation::Gate(GateApplication::new(
                gate,
                to_controls(controls),
                target.0,
            )))
        }
        _ => Err(CircuitError::parse(
            lineno,
            format!("unknown gate `{mnemonic}`"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Polarity;

    const HEADER: &str = ".version 2.0\n.numvars 3\n.variables a b c\n.begin\n";

    fn with_body(body: &str) -> String {
        format!("{HEADER}{body}\n.end\n")
    }

    #[test]
    fn variables_map_msb_first() {
        let qc = parse(&with_body("t1 a")).unwrap();
        match &qc.ops()[0] {
            Operation::Gate(g) => assert_eq!(g.target, 2, "first variable is MSB"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn toffoli_family() {
        let qc = parse(&with_body("t1 c\nt2 a c\nt3 a b c")).unwrap();
        assert_eq!(qc.gate_count(), 3);
        match &qc.ops()[2] {
            Operation::Gate(g) => {
                assert_eq!(g.controls.len(), 2);
                assert_eq!(g.target, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_controls() {
        let qc = parse(&with_body("t2 -a c")).unwrap();
        match &qc.ops()[0] {
            Operation::Gate(g) => {
                assert_eq!(g.controls[0].polarity, Polarity::Negative);
                assert_eq!(g.controls[0].qubit, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fredkin_and_swap() {
        let qc = parse(&with_body("f2 a b\nf3 a b c")).unwrap();
        match &qc.ops()[0] {
            Operation::Swap { a, b, controls } => {
                assert_eq!((*a, *b), (2, 1));
                assert!(controls.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        match &qc.ops()[1] {
            Operation::Swap { a, b, controls } => {
                assert_eq!((*a, *b), (1, 0));
                assert_eq!(controls.len(), 1);
                assert_eq!(controls[0].qubit, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn controlled_v_gates() {
        let qc = parse(&with_body("v a c\nv+ a c")).unwrap();
        match (&qc.ops()[0], &qc.ops()[1]) {
            (Operation::Gate(v), Operation::Gate(vdg)) => {
                assert_eq!(v.gate, StandardGate::Sx);
                assert_eq!(vdg.gate, StandardGate::Sxdg);
                assert_eq!(v.controls.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "# a NOT gate\n.version 2.0\n.numvars 1\n.variables a\n\n.begin\nt1 a # inline\n.end\n";
        let qc = parse(src).unwrap();
        assert_eq!(qc.gate_count(), 1);
    }

    #[test]
    fn implicit_variable_names() {
        let src = ".numvars 2\n.begin\nt2 x1 x2\n.end\n";
        let qc = parse(src).unwrap();
        assert_eq!(qc.num_qubits(), 2);
    }

    #[test]
    fn error_cases() {
        assert!(parse(".numvars 2\n.variables a\n.begin\n.end").is_err());
        assert!(parse(&with_body("t2 a")).is_err(), "arity mismatch");
        assert!(parse(&with_body("q1 a")).is_err(), "unknown gate");
        assert!(parse(&with_body("t1 z")).is_err(), "unknown variable");
        assert!(parse(&with_body("t1 -a")).is_err(), "negated target");
        assert!(parse(".numvars 1\n.variables a\nt1 a\n.begin\n.end").is_err());
        assert!(parse(HEADER).is_err(), "missing .end");
    }

    #[test]
    fn v_squared_equals_not() {
        // v·v on the same target equals X — checked through the gate
        // matrices to guard the Sx mapping.
        use qdd_core::gates::{approx_eq, matmul};
        let sx = StandardGate::Sx.matrix();
        let xx = matmul(&sx, &sx);
        assert!(approx_eq(&xx, &StandardGate::X.matrix(), 1e-12));
    }
}
