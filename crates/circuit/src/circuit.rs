//! The in-memory quantum circuit.

use crate::error::CircuitError;
use crate::gate::{format_angle, StandardGate};
use crate::op::{Condition, GateApplication, Operation};
use qdd_core::{Control, Polarity};
use std::fmt;

/// A named contiguous range of qubits (for format round-trips).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantumRegister {
    /// Register name (e.g. `q`).
    pub name: String,
    /// First global qubit index.
    pub offset: usize,
    /// Number of qubits.
    pub size: usize,
}

/// A named contiguous range of classical bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassicalRegister {
    /// Register name (e.g. `c`).
    pub name: String,
    /// First global bit index.
    pub offset: usize,
    /// Number of bits.
    pub size: usize,
}

/// A quantum circuit: a register of qubits, classical bits, and a sequence
/// of [`Operation`]s (paper §II, Fig. 1(c)).
///
/// Builder methods use the global qubit indexing of the paper: qubit `n-1`
/// is the most significant. All builders panic on out-of-range indices —
/// the circuit is a programmatic construction, not untrusted input (parsers
/// validate and return [`CircuitError`] instead).
///
/// # Examples
///
/// ```
/// use qdd_circuit::QuantumCircuit;
///
/// let mut qc = QuantumCircuit::new(3);
/// qc.h(2).cp(std::f64::consts::FRAC_PI_2, 1, 2).barrier();
/// assert_eq!(qc.len(), 3);
/// assert_eq!(qc.gate_count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QuantumCircuit {
    name: String,
    num_qubits: usize,
    qregs: Vec<QuantumRegister>,
    cregs: Vec<ClassicalRegister>,
    ops: Vec<Operation>,
    global_phase: f64,
}

impl QuantumCircuit {
    /// Creates an empty circuit over `n` qubits with a single register `q`
    /// and no classical bits.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "circuit needs at least one qubit");
        QuantumCircuit {
            name: String::from("circuit"),
            num_qubits: n,
            qregs: vec![QuantumRegister {
                name: "q".to_string(),
                offset: 0,
                size: n,
            }],
            cregs: Vec::new(),
            ops: Vec::new(),
            global_phase: 0.0,
        }
    }

    /// Creates an empty named circuit.
    pub fn with_name(n: usize, name: impl Into<String>) -> Self {
        let mut qc = Self::new(n);
        qc.name = name.into();
        qc
    }

    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The number of classical bits across all registers.
    pub fn num_clbits(&self) -> usize {
        self.cregs.iter().map(|r| r.size).sum()
    }

    /// The quantum registers.
    pub fn qregs(&self) -> &[QuantumRegister] {
        &self.qregs
    }

    /// The classical registers.
    pub fn cregs(&self) -> &[ClassicalRegister] {
        &self.cregs
    }

    /// Replaces the default register structure (used by parsers).
    pub(crate) fn set_qregs(&mut self, regs: Vec<QuantumRegister>) {
        debug_assert_eq!(regs.iter().map(|r| r.size).sum::<usize>(), self.num_qubits);
        self.qregs = regs;
    }

    /// Declares an additional classical register, returning its index.
    pub fn add_creg(&mut self, name: impl Into<String>, size: usize) -> usize {
        let offset = self.num_clbits();
        self.cregs.push(ClassicalRegister {
            name: name.into(),
            offset,
            size,
        });
        self.cregs.len() - 1
    }

    /// The operations in program order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// The number of operations (including barriers and measurements).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The number of *gate* operations (excluding barriers, measurements,
    /// resets).
    pub fn gate_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Operation::Gate(_) | Operation::Swap { .. }))
            .count()
    }

    /// A global phase `e^{iθ}` accumulated by transformations.
    pub fn global_phase(&self) -> f64 {
        self.global_phase
    }

    /// Adds to the circuit's global phase.
    pub fn add_global_phase(&mut self, theta: f64) {
        self.global_phase += theta;
    }

    fn check_qubit(&self, q: usize) {
        assert!(
            q < self.num_qubits,
            "qubit {q} out of range for {}-qubit circuit",
            self.num_qubits
        );
    }

    /// Appends a raw operation.
    ///
    /// # Panics
    ///
    /// Panics if the operation references qubits outside the register.
    pub fn append(&mut self, op: Operation) -> &mut Self {
        for q in op.qubits() {
            self.check_qubit(q);
        }
        self.ops.push(op);
        self
    }

    /// Appends a gate with explicit controls.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range qubits or a control equal to the target.
    pub fn gate(&mut self, gate: StandardGate, controls: Vec<Control>, target: usize) -> &mut Self {
        assert!(
            controls.iter().all(|c| c.qubit != target),
            "control on target qubit {target}"
        );
        self.append(Operation::Gate(GateApplication::new(gate, controls, target)))
    }

    /// Appends a classically conditioned gate.
    pub fn gate_if(
        &mut self,
        gate: StandardGate,
        controls: Vec<Control>,
        target: usize,
        condition: Condition,
    ) -> &mut Self {
        let mut app = GateApplication::new(gate, controls, target);
        app.condition = Some(condition);
        self.append(Operation::Gate(app))
    }

    // --- ungated single-qubit conveniences ------------------------------

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::H, vec![], q)
    }

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::X, vec![], q)
    }

    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::Y, vec![], q)
    }

    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::Z, vec![], q)
    }

    /// S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::S, vec![], q)
    }

    /// S† gate on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::Sdg, vec![], q)
    }

    /// T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::T, vec![], q)
    }

    /// T† gate on `q`.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::Tdg, vec![], q)
    }

    /// √X gate on `q`.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.gate(StandardGate::Sx, vec![], q)
    }

    /// Phase gate `P(θ)` on `q`.
    pub fn p(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(StandardGate::Phase(theta), vec![], q)
    }

    /// `RX(θ)` on `q`.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(StandardGate::Rx(theta), vec![], q)
    }

    /// `RY(θ)` on `q`.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(StandardGate::Ry(theta), vec![], q)
    }

    /// `RZ(θ)` on `q`.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.gate(StandardGate::Rz(theta), vec![], q)
    }

    /// `U(θ, φ, λ)` on `q`.
    pub fn u(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.gate(StandardGate::U(theta, phi, lambda), vec![], q)
    }

    // --- controlled conveniences ----------------------------------------

    /// CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.gate(StandardGate::X, vec![Control::pos(c)], t)
    }

    /// Controlled-Y.
    pub fn cy(&mut self, c: usize, t: usize) -> &mut Self {
        self.gate(StandardGate::Y, vec![Control::pos(c)], t)
    }

    /// Controlled-Z.
    pub fn cz(&mut self, c: usize, t: usize) -> &mut Self {
        self.gate(StandardGate::Z, vec![Control::pos(c)], t)
    }

    /// Controlled-Hadamard.
    pub fn ch(&mut self, c: usize, t: usize) -> &mut Self {
        self.gate(StandardGate::H, vec![Control::pos(c)], t)
    }

    /// Controlled phase `CP(θ)` — the paper's controlled `p(θ)` family.
    pub fn cp(&mut self, theta: f64, c: usize, t: usize) -> &mut Self {
        self.gate(StandardGate::Phase(theta), vec![Control::pos(c)], t)
    }

    /// Controlled `RY(θ)`.
    pub fn cry(&mut self, theta: f64, c: usize, t: usize) -> &mut Self {
        self.gate(StandardGate::Ry(theta), vec![Control::pos(c)], t)
    }

    /// Toffoli (CCX).
    pub fn ccx(&mut self, c1: usize, c2: usize, t: usize) -> &mut Self {
        self.gate(StandardGate::X, vec![Control::pos(c1), Control::pos(c2)], t)
    }

    /// Multi-controlled X.
    pub fn mcx(&mut self, controls: &[usize], t: usize) -> &mut Self {
        let ctrls = controls.iter().map(|&q| Control::pos(q)).collect();
        self.gate(StandardGate::X, ctrls, t)
    }

    /// Multi-controlled Z.
    pub fn mcz(&mut self, controls: &[usize], t: usize) -> &mut Self {
        let ctrls = controls.iter().map(|&q| Control::pos(q)).collect();
        self.gate(StandardGate::Z, ctrls, t)
    }

    /// SWAP of `a` and `b` (the paper's `×—×`).
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        assert_ne!(a, b, "swap of a qubit with itself");
        self.append(Operation::Swap {
            a,
            b,
            controls: vec![],
        })
    }

    /// Controlled SWAP (Fredkin).
    pub fn cswap(&mut self, c: usize, a: usize, b: usize) -> &mut Self {
        assert_ne!(a, b, "swap of a qubit with itself");
        assert!(c != a && c != b, "control on swapped qubit");
        self.append(Operation::Swap {
            a,
            b,
            controls: vec![Control::pos(c)],
        })
    }

    // --- special operations ----------------------------------------------

    /// A barrier (breakpoint for the paper's stepping controls).
    pub fn barrier(&mut self) -> &mut Self {
        self.append(Operation::Barrier)
    }

    /// Measures `qubit` into classical `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is not covered by a declared classical register.
    pub fn measure(&mut self, qubit: usize, bit: usize) -> &mut Self {
        assert!(
            bit < self.num_clbits(),
            "classical bit {bit} out of range ({} bits declared)",
            self.num_clbits()
        );
        self.append(Operation::Measure { qubit, bit })
    }

    /// Declares (if needed) a `meas` register and measures every qubit into
    /// its corresponding bit.
    pub fn measure_all(&mut self) -> &mut Self {
        if self.num_clbits() < self.num_qubits {
            let missing = self.num_qubits - self.num_clbits();
            self.add_creg("meas", missing);
        }
        for q in 0..self.num_qubits {
            self.append(Operation::Measure { qubit: q, bit: q });
        }
        self
    }

    /// Resets `qubit` to `|0⟩`.
    pub fn reset(&mut self, qubit: usize) -> &mut Self {
        self.append(Operation::Reset { qubit })
    }

    // --- whole-circuit transformations ------------------------------------

    /// Appends all operations of `other` (registers are not merged; `other`
    /// must not be wider).
    ///
    /// # Panics
    ///
    /// Panics if `other` has more qubits than `self`.
    pub fn extend(&mut self, other: &QuantumCircuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot extend a {}-qubit circuit with a {}-qubit one",
            self.num_qubits,
            other.num_qubits
        );
        for op in &other.ops {
            self.append(op.clone());
        }
        self.global_phase += other.global_phase;
        self
    }

    /// Relabels every qubit through `perm` (`perm[old] = new`) — the
    /// adjustment needed to verify circuits written with different qubit
    /// orderings (the paper's tool requires "the same variable order";
    /// this produces it).
    ///
    /// # Errors
    ///
    /// [`CircuitError::QubitOutOfRange`] if `perm` is not a permutation of
    /// `0..num_qubits`.
    pub fn map_qubits(&self, perm: &[usize]) -> Result<QuantumCircuit, CircuitError> {
        let n = self.num_qubits;
        let mut seen = vec![false; n];
        if perm.len() != n {
            return Err(CircuitError::QubitOutOfRange {
                qubit: perm.len(),
                num_qubits: n,
            });
        }
        for &p in perm {
            if p >= n || seen[p] {
                return Err(CircuitError::QubitOutOfRange { qubit: p, num_qubits: n });
            }
            seen[p] = true;
        }
        let mut out = QuantumCircuit::with_name(n, format!("{}_mapped", self.name));
        out.cregs = self.cregs.clone();
        for op in &self.ops {
            let mapped = match op {
                Operation::Barrier => Operation::Barrier,
                Operation::Measure { qubit, bit } => Operation::Measure {
                    qubit: perm[*qubit],
                    bit: *bit,
                },
                Operation::Reset { qubit } => Operation::Reset { qubit: perm[*qubit] },
                Operation::Swap { a, b, controls } => Operation::Swap {
                    a: perm[*a],
                    b: perm[*b],
                    controls: controls
                        .iter()
                        .map(|c| Control { qubit: perm[c.qubit], polarity: c.polarity })
                        .collect(),
                },
                Operation::Gate(g) => {
                    let mut mapped = g.clone();
                    mapped.target = perm[g.target];
                    mapped.controls = g
                        .controls
                        .iter()
                        .map(|c| Control { qubit: perm[c.qubit], polarity: c.polarity })
                        .collect();
                    Operation::Gate(mapped)
                }
            };
            out.ops.push(mapped);
        }
        out.global_phase = self.global_phase;
        Ok(out)
    }

    /// The inverse circuit: operations reversed and individually inverted.
    ///
    /// # Errors
    ///
    /// [`CircuitError::NotInvertible`] if the circuit contains measurements,
    /// resets, or classically-conditioned gates.
    pub fn inverse(&self) -> Result<QuantumCircuit, CircuitError> {
        let mut inv = QuantumCircuit::with_name(self.num_qubits, format!("{}_dg", self.name));
        inv.qregs = self.qregs.clone();
        inv.cregs = self.cregs.clone();
        inv.global_phase = -self.global_phase;
        for (i, op) in self.ops.iter().enumerate().rev() {
            match op.inverse() {
                Some(op) => {
                    inv.ops.push(op);
                }
                None => return Err(CircuitError::NotInvertible { op_index: i }),
            }
        }
        Ok(inv)
    }

    /// The circuit depth: the longest chain of operations sharing qubits
    /// (barriers excluded).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        for op in &self.ops {
            let qs = op.qubits();
            if qs.is_empty() {
                continue;
            }
            let next = qs.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for q in qs {
                level[q] = next;
            }
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// Serializes to OpenQASM 2.0 source.
    ///
    /// Controlled gates beyond the `qelib1` vocabulary (negative or ≥3
    /// controls) are not representable in plain QASM 2 and are emitted as
    /// decomposed positive-control forms where possible; negative controls
    /// are wrapped in `x` conjugations.
    pub fn to_qasm(&self) -> String {
        let mut out = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
        for r in &self.qregs {
            out.push_str(&format!("qreg {}[{}];\n", r.name, r.size));
        }
        for r in &self.cregs {
            out.push_str(&format!("creg {}[{}];\n", r.name, r.size));
        }
        for op in &self.ops {
            self.emit_qasm_op(op, &mut out);
        }
        out
    }

    fn qubit_name(&self, q: usize) -> String {
        for r in &self.qregs {
            if q >= r.offset && q < r.offset + r.size {
                return format!("{}[{}]", r.name, q - r.offset);
            }
        }
        unreachable!("qubit {q} not covered by any register")
    }

    fn bit_name(&self, b: usize) -> String {
        for r in &self.cregs {
            if b >= r.offset && b < r.offset + r.size {
                return format!("{}[{}]", r.name, b - r.offset);
            }
        }
        unreachable!("bit {b} not covered by any register")
    }

    fn emit_qasm_op(&self, op: &Operation, out: &mut String) {
        match op {
            Operation::Barrier => {
                let all: Vec<String> = self.qregs.iter().map(|r| r.name.clone()).collect();
                out.push_str(&format!("barrier {};\n", all.join(",")));
            }
            Operation::Measure { qubit, bit } => {
                out.push_str(&format!(
                    "measure {} -> {};\n",
                    self.qubit_name(*qubit),
                    self.bit_name(*bit)
                ));
            }
            Operation::Reset { qubit } => {
                out.push_str(&format!("reset {};\n", self.qubit_name(*qubit)));
            }
            Operation::Swap { a, b, controls } if controls.is_empty() => {
                out.push_str(&format!(
                    "swap {},{};\n",
                    self.qubit_name(*a),
                    self.qubit_name(*b)
                ));
            }
            Operation::Swap { a, b, controls }
                if controls.len() == 1 && controls[0].polarity == Polarity::Positive =>
            {
                out.push_str(&format!(
                    "cswap {},{},{};\n",
                    self.qubit_name(controls[0].qubit),
                    self.qubit_name(*a),
                    self.qubit_name(*b)
                ));
            }
            Operation::Swap { .. } => {
                for g in op.to_gate_sequence().expect("swap is unitary") {
                    self.emit_qasm_op(&Operation::Gate(g), out);
                }
            }
            Operation::Gate(g) => {
                let mut line = String::new();
                if let Some(c) = g.condition {
                    line.push_str(&format!(
                        "if({}=={}) ",
                        self.cregs[c.creg].name, c.value
                    ));
                }
                // Negative controls: conjugate with X.
                let neg: Vec<usize> = g
                    .controls
                    .iter()
                    .filter(|c| c.polarity == Polarity::Negative)
                    .map(|c| c.qubit)
                    .collect();
                for &q in &neg {
                    out.push_str(&format!("x {};\n", self.qubit_name(q)));
                }
                line.push_str(&self.qasm_gate_call(g));
                out.push_str(&line);
                for &q in &neg {
                    out.push_str(&format!("x {};\n", self.qubit_name(q)));
                }
            }
        }
    }

    fn qasm_gate_call(&self, g: &GateApplication) -> String {
        let gate = g.gate.simplified();
        let params = gate.params();
        let param_str = if params.is_empty() {
            String::new()
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format_angle(*p)).collect();
            format!("({})", rendered.join(","))
        };
        let ctrl_names: Vec<String> = g
            .controls
            .iter()
            .map(|c| self.qubit_name(c.qubit))
            .collect();
        let tgt = self.qubit_name(g.target);
        match (g.controls.len(), gate) {
            (0, _) => format!("{}{} {};\n", gate.name(), param_str, tgt),
            (1, StandardGate::X) => format!("cx {},{};\n", ctrl_names[0], tgt),
            (1, StandardGate::Y) => format!("cy {},{};\n", ctrl_names[0], tgt),
            (1, StandardGate::Z) => format!("cz {},{};\n", ctrl_names[0], tgt),
            (1, StandardGate::H) => format!("ch {},{};\n", ctrl_names[0], tgt),
            (1, StandardGate::Phase(_)) => {
                format!("cp{} {},{};\n", param_str, ctrl_names[0], tgt)
            }
            (1, StandardGate::Rx(_)) => format!("crx{} {},{};\n", param_str, ctrl_names[0], tgt),
            (1, StandardGate::Ry(_)) => format!("cry{} {},{};\n", param_str, ctrl_names[0], tgt),
            (1, StandardGate::Rz(_)) => format!("crz{} {},{};\n", param_str, ctrl_names[0], tgt),
            (1, StandardGate::S) => {
                format!("cp(pi/2) {},{};\n", ctrl_names[0], tgt)
            }
            (1, StandardGate::Sdg) => {
                format!("cp(-pi/2) {},{};\n", ctrl_names[0], tgt)
            }
            (1, StandardGate::T) => {
                format!("cp(pi/4) {},{};\n", ctrl_names[0], tgt)
            }
            (1, StandardGate::Tdg) => {
                format!("cp(-pi/4) {},{};\n", ctrl_names[0], tgt)
            }
            (2, StandardGate::X) => {
                format!("ccx {},{},{};\n", ctrl_names[0], ctrl_names[1], tgt)
            }
            _ => {
                // Fall back to the generic multi-control form understood by
                // our own parser (an extension): mcx c0,...,ck,t;
                let mut args = ctrl_names;
                args.push(tgt);
                format!("mc{}{} {};\n", gate.name(), param_str, args.join(","))
            }
        }
    }
}

impl fmt::Display for QuantumCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{} qubits, {} ops, depth {}]",
            self.name,
            self.num_qubits,
            self.ops.len(),
            self.depth()
        )?;
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(f, "  {i:3}: {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_counts() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(2).cx(2, 1).ccx(2, 1, 0).barrier().swap(0, 2);
        assert_eq!(qc.len(), 5);
        assert_eq!(qc.gate_count(), 4);
        assert_eq!(qc.num_qubits(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(2);
    }

    #[test]
    #[should_panic(expected = "control on target")]
    fn control_on_target_panics() {
        let mut qc = QuantumCircuit::new(2);
        qc.gate(StandardGate::X, vec![Control::pos(1)], 1);
    }

    #[test]
    fn measure_requires_declared_bits() {
        let mut qc = QuantumCircuit::new(2);
        qc.add_creg("c", 2);
        qc.measure(0, 1);
        assert_eq!(qc.num_clbits(), 2);
    }

    #[test]
    #[should_panic(expected = "classical bit")]
    fn measure_without_creg_panics() {
        let mut qc = QuantumCircuit::new(2);
        qc.measure(0, 0);
    }

    #[test]
    fn measure_all_declares_register() {
        let mut qc = QuantumCircuit::new(3);
        qc.measure_all();
        assert_eq!(qc.num_clbits(), 3);
        assert_eq!(qc.len(), 3);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(1).s(0).cx(1, 0);
        let inv = qc.inverse().unwrap();
        assert_eq!(inv.len(), 3);
        match &inv.ops()[0] {
            Operation::Gate(g) => assert_eq!(g.gate, StandardGate::X),
            other => panic!("unexpected {other:?}"),
        }
        match &inv.ops()[1] {
            Operation::Gate(g) => assert_eq!(g.gate, StandardGate::Sdg),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inverse_fails_on_measurement() {
        let mut qc = QuantumCircuit::new(1);
        qc.add_creg("c", 1);
        qc.h(0).measure(0, 0);
        assert!(matches!(
            qc.inverse(),
            Err(CircuitError::NotInvertible { op_index: 1 })
        ));
    }

    #[test]
    fn depth_ignores_barriers_and_tracks_parallelism() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).h(1).h(2); // depth 1
        assert_eq!(qc.depth(), 1);
        qc.cx(0, 1); // depth 2
        qc.barrier();
        qc.h(2); // still depth 2 on q2
        assert_eq!(qc.depth(), 2);
        qc.ccx(0, 1, 2); // depth 3
        assert_eq!(qc.depth(), 3);
    }

    #[test]
    fn to_qasm_emits_expected_vocabulary() {
        let mut qc = QuantumCircuit::new(3);
        qc.add_creg("c", 1);
        qc.h(2)
            .cp(std::f64::consts::FRAC_PI_2, 1, 2)
            .ccx(2, 1, 0)
            .swap(0, 2)
            .measure(0, 0)
            .reset(1);
        let qasm = qc.to_qasm();
        assert!(qasm.contains("OPENQASM 2.0;"));
        assert!(qasm.contains("h q[2];"));
        assert!(qasm.contains("cp(pi/2) q[1],q[2];"));
        assert!(qasm.contains("ccx q[2],q[1],q[0];"));
        assert!(qasm.contains("swap q[0],q[2];"));
        assert!(qasm.contains("measure q[0] -> c[0];"));
        assert!(qasm.contains("reset q[1];"));
    }

    #[test]
    fn extend_appends_operations() {
        let mut a = QuantumCircuit::new(2);
        a.h(0);
        let mut b = QuantumCircuit::new(2);
        b.cx(0, 1);
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn display_lists_operations() {
        let mut qc = QuantumCircuit::with_name(2, "bell");
        qc.h(1).cx(1, 0);
        let s = qc.to_string();
        assert!(s.contains("bell [2 qubits, 2 ops"));
        assert!(s.contains("x c:q1 q0"));
    }
}
