//! Compilation passes: the decompositions the paper applies to obtain
//! Fig. 5(b) from Fig. 5(a).
//!
//! "The latter two types of gates \[controlled phase, SWAP\] are not native
//! to any current quantum computer and, thus, need to be compiled into
//! sequences of gates that are supported" (paper Example 10). The passes
//! here produce exactly those sequences — `{H, P(θ), CNOT}` — optionally
//! inserting a barrier after each source gate's expansion, which is what
//! the dashed lines in Fig. 5(b) are for (stepping granularity during
//! verification, Example 12).

use crate::circuit::QuantumCircuit;
use crate::gate::StandardGate;
use crate::op::{GateApplication, Operation};
use qdd_core::{Control, Polarity};

/// Where to insert barriers while compiling.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum BarrierPolicy {
    /// No barriers are inserted.
    #[default]
    None,
    /// A barrier after each source gate's expansion (Fig. 5(b) dashes).
    PerSourceGate,
}

/// Options for [`compile`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CompileOptions {
    /// Decompose SWAPs into three CNOTs.
    pub decompose_swaps: bool,
    /// Decompose singly-controlled phase-family gates (`CP`, `CS`, `CT`,
    /// `CZ`, …) into `{P, CNOT}`.
    pub decompose_controlled_phase: bool,
    /// Decompose Toffoli (CCX) into the standard `{H, T, CNOT}` network.
    pub decompose_ccx: bool,
    /// Barrier insertion policy.
    pub barriers: BarrierPolicy,
}

impl CompileOptions {
    /// The paper's Fig. 5(b) flow: swaps + controlled phases decomposed,
    /// barriers after each source gate.
    pub fn paper_flow() -> Self {
        CompileOptions {
            decompose_swaps: true,
            decompose_controlled_phase: true,
            decompose_ccx: false,
            barriers: BarrierPolicy::PerSourceGate,
        }
    }
}

/// Compiles a circuit with the given options, leaving untouched any
/// operation the options don't cover.
pub fn compile(qc: &QuantumCircuit, options: CompileOptions) -> QuantumCircuit {
    let mut out = QuantumCircuit::with_name(qc.num_qubits(), format!("{}_compiled", qc.name()));
    for reg in qc.cregs() {
        out.add_creg(reg.name.clone(), reg.size);
    }
    for op in qc.ops() {
        for e in expand_op(op, options) {
            out.append(e);
        }
        // Fig. 5(b) groups every source gate's expansion with a barrier so
        // the verification stepping of Example 12 stays aligned 1:1.
        if options.barriers == BarrierPolicy::PerSourceGate && !matches!(op, Operation::Barrier) {
            out.barrier();
        }
    }
    out
}

/// The paper's compiled three-qubit QFT (Fig. 5(b)): QFT with swaps,
/// compiled through [`CompileOptions::paper_flow`].
pub fn compiled_qft(n: usize) -> QuantumCircuit {
    compile(&crate::library::qft(n, true), CompileOptions::paper_flow())
}

fn expand_op(op: &Operation, options: CompileOptions) -> Vec<Operation> {
    match op {
        Operation::Swap { .. } if options.decompose_swaps => op
            .to_gate_sequence()
            .expect("swap is unitary")
            .into_iter()
            .map(Operation::Gate)
            .collect(),
        Operation::Gate(g) if g.condition.is_none() => {
            let is_phase_family = matches!(
                g.gate.simplified(),
                StandardGate::Phase(_)
                    | StandardGate::S
                    | StandardGate::Sdg
                    | StandardGate::T
                    | StandardGate::Tdg
                    | StandardGate::Z
            );
            let single_pos_control = g.controls.len() == 1
                && g.controls[0].polarity == Polarity::Positive;
            if options.decompose_controlled_phase && is_phase_family && single_pos_control {
                let theta = phase_angle(g.gate);
                return decompose_cp(theta, g.controls[0].qubit, g.target);
            }
            if options.decompose_ccx
                && g.gate == StandardGate::X
                && g.controls.len() == 2
                && g.controls.iter().all(|c| c.polarity == Polarity::Positive)
            {
                return decompose_ccx(g.controls[0].qubit, g.controls[1].qubit, g.target);
            }
            vec![op.clone()]
        }
        _ => vec![op.clone()],
    }
}

/// The phase angle of a phase-family gate.
fn phase_angle(gate: StandardGate) -> f64 {
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
    match gate.simplified() {
        StandardGate::Phase(t) => t,
        StandardGate::S => FRAC_PI_2,
        StandardGate::Sdg => -FRAC_PI_2,
        StandardGate::T => FRAC_PI_4,
        StandardGate::Tdg => -FRAC_PI_4,
        StandardGate::Z => PI,
        other => unreachable!("not a phase-family gate: {other:?}"),
    }
}

/// `CP(θ)` → `P(θ/2) c; CX; P(-θ/2) t; CX; P(θ/2) t` (the expansion behind
/// the `P(±π/4)`, `P(±π/8)` gates of Fig. 5(b)).
fn decompose_cp(theta: f64, c: usize, t: usize) -> Vec<Operation> {
    let p = |angle: f64, q: usize| {
        Operation::Gate(GateApplication::new(StandardGate::Phase(angle), vec![], q))
    };
    let cx = |c: usize, t: usize| {
        Operation::Gate(GateApplication::new(
            StandardGate::X,
            vec![Control::pos(c)],
            t,
        ))
    };
    vec![
        p(theta / 2.0, c),
        cx(c, t),
        p(-theta / 2.0, t),
        cx(c, t),
        p(theta / 2.0, t),
    ]
}

/// The standard 6-CNOT Toffoli decomposition over `{H, T, T†, CNOT}`.
fn decompose_ccx(a: usize, b: usize, t: usize) -> Vec<Operation> {
    let g = |gate: StandardGate, q: usize| {
        Operation::Gate(GateApplication::new(gate, vec![], q))
    };
    let cx = |c: usize, t: usize| {
        Operation::Gate(GateApplication::new(
            StandardGate::X,
            vec![Control::pos(c)],
            t,
        ))
    };
    vec![
        g(StandardGate::H, t),
        cx(b, t),
        g(StandardGate::Tdg, t),
        cx(a, t),
        g(StandardGate::T, t),
        cx(b, t),
        g(StandardGate::Tdg, t),
        cx(a, t),
        g(StandardGate::T, b),
        g(StandardGate::T, t),
        g(StandardGate::H, t),
        cx(a, b),
        g(StandardGate::T, a),
        g(StandardGate::Tdg, b),
        cx(a, b),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::qft;

    #[test]
    fn paper_flow_expands_qft3_like_fig_5b() {
        let compiled = compiled_qft(3);
        // No controlled-phase or swap survives.
        for op in compiled.ops() {
            match op {
                Operation::Swap { .. } => panic!("swap not decomposed"),
                Operation::Gate(g) => {
                    if !g.controls.is_empty() {
                        assert_eq!(
                            g.gate,
                            StandardGate::X,
                            "only CNOTs may remain controlled"
                        );
                    }
                }
                Operation::Barrier => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        // One barrier per source operation (3 H + 3 CP + 1 SWAP).
        let barriers = compiled
            .ops()
            .iter()
            .filter(|op| matches!(op, Operation::Barrier))
            .count();
        assert_eq!(barriers, 7);
    }

    #[test]
    fn every_source_gate_gets_a_barrier_group() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cx(0, 1);
        let out = compile(&qc, CompileOptions::paper_flow());
        assert_eq!(out.len(), 4, "each source gate followed by its barrier");
    }

    #[test]
    fn cp_decomposition_has_five_gates() {
        let ops = decompose_cp(std::f64::consts::FRAC_PI_2, 1, 0);
        assert_eq!(ops.len(), 5);
        let cx_count = ops
            .iter()
            .filter(|op| match op {
                Operation::Gate(g) => !g.controls.is_empty(),
                _ => false,
            })
            .count();
        assert_eq!(cx_count, 2);
    }

    #[test]
    fn ccx_decomposition_inventory() {
        let ops = decompose_ccx(2, 1, 0);
        assert_eq!(ops.len(), 15);
        let cx = ops
            .iter()
            .filter(|op| match op {
                Operation::Gate(g) => g.controls.len() == 1,
                _ => false,
            })
            .count();
        assert_eq!(cx, 6);
    }

    #[test]
    fn options_off_is_identity() {
        let src = qft(3, true);
        let out = compile(&src, CompileOptions::default());
        assert_eq!(out.len(), src.len());
    }

    #[test]
    fn cregs_are_preserved() {
        let mut qc = QuantumCircuit::new(2);
        qc.add_creg("c", 2);
        qc.h(0);
        let out = compile(&qc, CompileOptions::paper_flow());
        assert_eq!(out.num_clbits(), 2);
    }
}
