//! Parameter-expression AST and evaluation.

use crate::error::CircuitError;
use std::collections::HashMap;

/// A parameter expression appearing in gate arguments.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Expr {
    Num(f64),
    Pi,
    Param(String),
    Neg(Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    Pow(Box<Expr>, Box<Expr>),
    Call(String, Box<Expr>),
}

impl Expr {
    /// Evaluates the expression with the given parameter bindings.
    pub(crate) fn eval(
        &self,
        bindings: &HashMap<String, f64>,
        line: usize,
    ) -> Result<f64, CircuitError> {
        Ok(match self {
            Expr::Num(v) => *v,
            Expr::Pi => std::f64::consts::PI,
            Expr::Param(name) => *bindings.get(name).ok_or_else(|| {
                CircuitError::parse(line, format!("unknown parameter `{name}`"))
            })?,
            Expr::Neg(e) => -e.eval(bindings, line)?,
            Expr::Add(a, b) => a.eval(bindings, line)? + b.eval(bindings, line)?,
            Expr::Sub(a, b) => a.eval(bindings, line)? - b.eval(bindings, line)?,
            Expr::Mul(a, b) => a.eval(bindings, line)? * b.eval(bindings, line)?,
            Expr::Div(a, b) => {
                let d = b.eval(bindings, line)?;
                if d == 0.0 {
                    return Err(CircuitError::parse(line, "division by zero in parameter"));
                }
                a.eval(bindings, line)? / d
            }
            Expr::Pow(a, b) => a.eval(bindings, line)?.powf(b.eval(bindings, line)?),
            Expr::Call(func, arg) => {
                let v = arg.eval(bindings, line)?;
                match func.as_str() {
                    "sin" => v.sin(),
                    "cos" => v.cos(),
                    "tan" => v.tan(),
                    "exp" => v.exp(),
                    "ln" => v.ln(),
                    "sqrt" => v.sqrt(),
                    other => {
                        return Err(CircuitError::parse(
                            line,
                            format!("unknown function `{other}`"),
                        ))
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(e: &Expr) -> f64 {
        e.eval(&HashMap::new(), 1).unwrap()
    }

    #[test]
    fn arithmetic() {
        let e = Expr::Add(
            Box::new(Expr::Mul(Box::new(Expr::Num(2.0)), Box::new(Expr::Pi))),
            Box::new(Expr::Neg(Box::new(Expr::Num(1.0)))),
        );
        assert!((eval(&e) - (2.0 * std::f64::consts::PI - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn functions() {
        let e = Expr::Call("cos".into(), Box::new(Expr::Num(0.0)));
        assert!((eval(&e) - 1.0).abs() < 1e-12);
        let e = Expr::Call("sqrt".into(), Box::new(Expr::Num(4.0)));
        assert!((eval(&e) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn parameters_resolve() {
        let mut b = HashMap::new();
        b.insert("theta".to_string(), 0.5);
        let e = Expr::Div(Box::new(Expr::Param("theta".into())), Box::new(Expr::Num(2.0)));
        assert!((e.eval(&b, 1).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unknown_parameter_errors() {
        let e = Expr::Param("mystery".into());
        assert!(e.eval(&HashMap::new(), 7).is_err());
    }

    #[test]
    fn division_by_zero_errors() {
        let e = Expr::Div(Box::new(Expr::Num(1.0)), Box::new(Expr::Num(0.0)));
        assert!(e.eval(&HashMap::new(), 1).is_err());
    }
}
