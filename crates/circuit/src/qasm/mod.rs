//! OpenQASM 2.0 parsing — the primary input format of the paper's tool
//! ("drag-and-drop an algorithm/circuit file in either `.qasm` or `.real`
//! format", §IV-B).
//!
//! Supported subset (everything the tool's example algorithms use):
//!
//! * `OPENQASM 2.0;`, `include "qelib1.inc";` (the include is built in);
//! * `qreg` / `creg` declarations (multiple registers);
//! * the built-in `U`/`CX` plus the full `qelib1` vocabulary
//!   (`id u1 u2 u3 u p x y z h s sdg t tdg sx sxdg rx ry rz cx cy cz ch cp
//!   cu1 crx cry crz cu3 ccx swap cswap`);
//! * user-defined `gate` definitions (macro-expanded), `opaque` (ignored);
//! * parameter expressions with `pi`, `+ - * / ^`, unary minus and the
//!   functions `sin cos tan exp ln sqrt`;
//! * register broadcasting (`h q;` applies to every qubit of `q`);
//! * `barrier`, `measure a -> c`, `reset`, and `if (c == k) <gate>;`.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! OPENQASM 2.0;
//! include "qelib1.inc";
//! qreg q[2];
//! creg c[2];
//! h q[1];
//! cx q[1], q[0];
//! measure q -> c;
//! "#;
//! let qc = qdd_circuit::qasm::parse(src).unwrap();
//! assert_eq!(qc.num_qubits(), 2);
//! assert_eq!(qc.gate_count(), 2);
//! ```

mod expr;
mod lexer;
mod parser;

pub use parser::parse;

#[cfg(test)]
mod tests {
    use super::parse;
    use crate::{Operation, StandardGate};

    #[test]
    fn parses_minimal_bell() {
        let qc = parse(
            "OPENQASM 2.0; qreg q[2]; h q[1]; CX q[1], q[0];",
        )
        .unwrap();
        assert_eq!(qc.num_qubits(), 2);
        assert_eq!(qc.gate_count(), 2);
    }

    #[test]
    fn parses_parameter_expressions() {
        let qc = parse(
            "OPENQASM 2.0; qreg q[1]; p(pi/4) q[0]; rz(-pi/2 + pi/4) q[0]; rx(2*pi/8) q[0];",
        )
        .unwrap();
        let ops = qc.ops();
        match &ops[0] {
            Operation::Gate(g) => match g.gate {
                StandardGate::Phase(t) => {
                    assert!((t - std::f64::consts::FRAC_PI_4).abs() < 1e-12)
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        match &ops[1] {
            Operation::Gate(g) => match g.gate {
                StandardGate::Rz(t) => {
                    assert!((t + std::f64::consts::FRAC_PI_4).abs() < 1e-12)
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn broadcast_over_register() {
        let qc = parse("OPENQASM 2.0; qreg q[3]; h q;").unwrap();
        assert_eq!(qc.gate_count(), 3);
    }

    #[test]
    fn broadcast_measure() {
        let qc = parse("OPENQASM 2.0; qreg q[2]; creg c[2]; measure q -> c;").unwrap();
        let measures = qc
            .ops()
            .iter()
            .filter(|op| matches!(op, Operation::Measure { .. }))
            .count();
        assert_eq!(measures, 2);
    }

    #[test]
    fn user_gate_definition_expands() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            gate bell a, b { h a; cx a, b; }
            qreg q[2];
            bell q[1], q[0];
        "#;
        let qc = parse(src).unwrap();
        assert_eq!(qc.gate_count(), 2);
    }

    #[test]
    fn parameterized_user_gate() {
        let src = r#"
            OPENQASM 2.0;
            gate twist(theta) a { rz(theta/2) a; rz(theta/2) a; }
            qreg q[1];
            twist(pi) q[0];
        "#;
        let qc = parse(src).unwrap();
        assert_eq!(qc.gate_count(), 2);
        match &qc.ops()[0] {
            Operation::Gate(g) => match g.gate {
                StandardGate::Rz(t) => assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn classical_condition() {
        let src = "OPENQASM 2.0; qreg q[1]; creg c[1]; if (c == 1) x q[0];";
        let qc = parse(src).unwrap();
        match &qc.ops()[0] {
            Operation::Gate(g) => {
                let cond = g.condition.expect("condition");
                assert_eq!(cond.value, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "got: {msg}");
    }

    #[test]
    fn rejects_undeclared_register() {
        assert!(parse("OPENQASM 2.0; h q[0];").is_err());
    }

    #[test]
    fn rejects_out_of_range_index() {
        assert!(parse("OPENQASM 2.0; qreg q[2]; h q[2];").is_err());
    }

    #[test]
    fn recursive_gate_definition_errors_instead_of_overflowing() {
        let src = "OPENQASM 2.0; qreg q[1]; gate rec a { rec a; } rec q[0];";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("recursive"), "got: {err}");
    }

    #[test]
    fn mutually_recursive_gates_error() {
        let src = "OPENQASM 2.0; qreg q[1]; \
                   gate pong a { ping a; } gate ping a { pong a; } ping q[0];";
        assert!(parse(src).is_err());
    }

    #[test]
    fn deeply_nested_expression_errors_instead_of_overflowing() {
        let open = "(".repeat(20_000);
        let close = ")".repeat(20_000);
        let src = format!("OPENQASM 2.0; qreg q[1]; rz({open}pi{close}) q[0];");
        assert!(parse(&src).is_err());
        let minuses = "-".repeat(20_000);
        let src = format!("OPENQASM 2.0; qreg q[1]; rz({minuses}1) q[0];");
        assert!(parse(&src).is_err());
    }

    #[test]
    fn oversized_registers_are_rejected() {
        assert!(parse("OPENQASM 2.0; qreg q[1000000000];").is_err());
        // Two registers that only jointly exceed the cap.
        assert!(parse("OPENQASM 2.0; qreg a[100]; qreg b[100];").is_err());
        assert!(parse("OPENQASM 2.0; qreg q[1]; creg c[1000000000];").is_err());
        // At the cap is fine.
        assert!(parse(&format!("OPENQASM 2.0; qreg q[{}];", qdd_core::MAX_QUBITS)).is_ok());
    }

    #[test]
    fn round_trip_through_to_qasm() {
        let mut qc = crate::QuantumCircuit::new(3);
        qc.add_creg("c", 3);
        qc.h(2)
            .cp(std::f64::consts::FRAC_PI_4, 0, 2)
            .ccx(2, 1, 0)
            .swap(0, 2)
            .barrier()
            .measure(1, 1);
        let qasm = qc.to_qasm();
        let back = parse(&qasm).unwrap();
        assert_eq!(back.num_qubits(), 3);
        assert_eq!(back.gate_count(), qc.gate_count());
    }
}

#[cfg(test)]
mod two_qubit_rotation_tests {
    use super::parse;

    #[test]
    fn rzz_rxx_ryy_expand() {
        let qc = parse(
            "OPENQASM 2.0; qreg q[2]; rzz(0.7) q[0],q[1]; rxx(0.4) q[0],q[1]; ryy(0.9) q[0],q[1];",
        )
        .unwrap();
        // 3 + 7 + 7 primitive gates.
        assert_eq!(qc.gate_count(), 17);
    }

    #[test]
    fn rzz_diagonal_action() {
        // RZZ(θ)|00⟩ = e^{-iθ/2}|00⟩; |01⟩ picks up e^{+iθ/2}.
        let qc = parse("OPENQASM 2.0; qreg q[2]; x q[0]; rzz(1.0) q[0],q[1];").unwrap();
        let mut dd = qdd_core::DdPackage::new();
        let mut s = dd.zero_state(2).unwrap();
        for op in qc.ops() {
            for g in op.to_gate_sequence().unwrap() {
                s = dd.apply_gate(s, g.gate.matrix(), &g.controls, g.target).unwrap();
            }
        }
        let amp = dd.amplitude(s, 0b01);
        let want = qdd_complex::Complex::cis(0.5);
        assert!(amp.approx_eq(want, 1e-12), "{amp} vs {want}");
    }
}
