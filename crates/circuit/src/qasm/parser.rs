//! Recursive-descent parser for the supported OpenQASM 2.0 subset.
//!
//! The parser is an untrusted-input boundary: malformed files must produce
//! [`CircuitError::Parse`], never a panic, stack overflow, or unbounded
//! allocation. Recursion (gate expansion, parameter expressions) and
//! register sizes are therefore explicitly bounded.
#![warn(clippy::unwrap_used)]

use super::expr::Expr;
use super::lexer::{tokenize, Token, TokenKind};
use crate::circuit::{QuantumCircuit, QuantumRegister};
use crate::error::CircuitError;
use crate::gate::StandardGate;
use crate::op::{Condition, GateApplication, Operation};
use qdd_core::Control;
use std::collections::HashMap;
use std::f64::consts::FRAC_PI_2;

/// Parses OpenQASM 2.0 source into a [`QuantumCircuit`].
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] with the offending line for syntax
/// errors, undeclared registers, arity mismatches, and out-of-range indices.
pub fn parse(src: &str) -> Result<QuantumCircuit, CircuitError> {
    let mut span = qdd_telemetry::span("circuit.parse_qasm");
    span.field("bytes", src.len());
    let tokens = tokenize(src)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        qregs: Vec::new(),
        cregs: Vec::new(),
        gate_defs: HashMap::new(),
        ops: Vec::new(),
        expr_depth: 0,
    };
    parser.program()?;
    parser.into_circuit()
}

#[derive(Clone, Debug)]
struct Reg {
    name: String,
    offset: usize,
    size: usize,
}

#[derive(Clone, Debug)]
struct GateDef {
    params: Vec<String>,
    qargs: Vec<String>,
    body: Vec<BodyStmt>,
}

#[derive(Clone, Debug)]
enum BodyStmt {
    Apply {
        name: String,
        line: usize,
        params: Vec<Expr>,
        qargs: Vec<String>,
    },
    Barrier,
}

/// A (possibly register-broadcast) quantum argument.
#[derive(Clone, Copy, Debug)]
enum Arg {
    Single(usize),
    Reg(usize),
}

/// Deepest allowed nesting of user gate definitions during expansion. The
/// qelib hierarchy is a handful of levels; anything deeper is almost
/// certainly a (mutually) recursive definition, which would otherwise
/// overflow the stack.
const MAX_GATE_EXPANSION_DEPTH: usize = 64;

/// Deepest allowed parameter-expression nesting (parentheses, unary signs,
/// powers) — bounds the recursive-descent stack on adversarial input.
const MAX_EXPR_DEPTH: usize = 256;

/// Ceiling on declared classical bits; quantum registers are capped by
/// [`qdd_core::MAX_QUBITS`].
const MAX_CLASSICAL_BITS: usize = 4096;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    qregs: Vec<Reg>,
    cregs: Vec<Reg>,
    gate_defs: HashMap<String, GateDef>,
    ops: Vec<Operation>,
    expr_depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn line(&self) -> usize {
        self.peek().line
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, CircuitError> {
        let t = self.advance();
        if std::mem::discriminant(&t.kind) == std::mem::discriminant(kind)
            && (!matches!(kind, TokenKind::Ident(_)) || t.kind == *kind)
        {
            Ok(t)
        } else {
            Err(CircuitError::parse(
                t.line,
                format!("expected {}, found {}", kind.describe(), t.kind.describe()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, usize), CircuitError> {
        let t = self.advance();
        match t.kind {
            TokenKind::Ident(s) => Ok((s, t.line)),
            other => Err(CircuitError::parse(
                t.line,
                format!("expected identifier, found {}", other.describe()),
            )),
        }
    }

    fn expect_uint(&mut self) -> Result<u64, CircuitError> {
        let t = self.advance();
        match t.kind {
            TokenKind::Number(v) if v >= 0.0 && v.fract() == 0.0 => Ok(v as u64),
            other => Err(CircuitError::parse(
                t.line,
                format!("expected non-negative integer, found {}", other.describe()),
            )),
        }
    }

    fn program(&mut self) -> Result<(), CircuitError> {
        loop {
            match &self.peek().kind {
                TokenKind::Eof => return Ok(()),
                TokenKind::Ident(word) => match word.as_str() {
                    "OPENQASM" => self.version()?,
                    "include" => self.include()?,
                    "qreg" => self.reg_decl(true)?,
                    "creg" => self.reg_decl(false)?,
                    "gate" => self.gate_def()?,
                    "opaque" => self.skip_to_semicolon()?,
                    "barrier" => self.barrier_stmt()?,
                    "measure" => self.measure_stmt()?,
                    "reset" => self.reset_stmt()?,
                    "if" => self.if_stmt()?,
                    _ => self.gate_stmt(None)?,
                },
                other => {
                    return Err(CircuitError::parse(
                        self.line(),
                        format!("unexpected {}", other.describe()),
                    ))
                }
            }
        }
    }

    fn version(&mut self) -> Result<(), CircuitError> {
        let line = self.line();
        self.advance(); // OPENQASM
        let t = self.advance();
        match t.kind {
            TokenKind::Number(v) if (2.0..3.0).contains(&v) => {}
            _ => return Err(CircuitError::parse(line, "only OpenQASM 2.x is supported")),
        }
        self.expect(&TokenKind::Semicolon)?;
        Ok(())
    }

    fn include(&mut self) -> Result<(), CircuitError> {
        self.advance(); // include
        let t = self.advance();
        if !matches!(t.kind, TokenKind::Str(_)) {
            return Err(CircuitError::parse(t.line, "expected include file name"));
        }
        // qelib1 is built in; any other include is accepted and ignored.
        self.expect(&TokenKind::Semicolon)?;
        Ok(())
    }

    fn reg_decl(&mut self, quantum: bool) -> Result<(), CircuitError> {
        let line = self.line();
        self.advance(); // qreg | creg
        let (name, _) = self.expect_ident()?;
        self.expect(&TokenKind::LBracket)?;
        let size = self.expect_uint()? as usize;
        self.expect(&TokenKind::RBracket)?;
        self.expect(&TokenKind::Semicolon)?;
        if size == 0 {
            return Err(CircuitError::parse(line, format!("register `{name}` has size 0")));
        }
        let regs = if quantum { &mut self.qregs } else { &mut self.cregs };
        if regs.iter().any(|r| r.name == name) {
            return Err(CircuitError::parse(line, format!("register `{name}` redeclared")));
        }
        let offset: usize = regs.iter().map(|r| r.size).sum();
        let cap = if quantum { qdd_core::MAX_QUBITS } else { MAX_CLASSICAL_BITS };
        if size > cap || offset + size > cap {
            return Err(CircuitError::parse(
                line,
                format!(
                    "register `{name}` pushes the total {} count past the supported \
                     maximum of {cap}",
                    if quantum { "qubit" } else { "classical bit" },
                ),
            ));
        }
        regs.push(Reg { name, offset, size });
        Ok(())
    }

    fn skip_to_semicolon(&mut self) -> Result<(), CircuitError> {
        loop {
            match self.advance().kind {
                TokenKind::Semicolon => return Ok(()),
                TokenKind::Eof => {
                    return Err(CircuitError::parse(self.line(), "unexpected end of input"))
                }
                _ => {}
            }
        }
    }

    fn gate_def(&mut self) -> Result<(), CircuitError> {
        self.advance(); // gate
        let (name, line) = self.expect_ident()?;
        let mut params = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.advance();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    params.push(self.expect_ident()?.0);
                    if self.peek().kind == TokenKind::Comma {
                        self.advance();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let mut qargs = Vec::new();
        loop {
            qargs.push(self.expect_ident()?.0);
            if self.peek().kind == TokenKind::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            if self.peek().kind == TokenKind::Eof {
                return Err(CircuitError::parse(line, format!("unterminated gate `{name}`")));
            }
            let (stmt_name, stmt_line) = self.expect_ident()?;
            if stmt_name == "barrier" {
                self.skip_to_semicolon()?;
                body.push(BodyStmt::Barrier);
                continue;
            }
            let mut stmt_params = Vec::new();
            if self.peek().kind == TokenKind::LParen {
                self.advance();
                if self.peek().kind != TokenKind::RParen {
                    loop {
                        stmt_params.push(self.parse_expr()?);
                        if self.peek().kind == TokenKind::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
            }
            let mut stmt_qargs = Vec::new();
            loop {
                stmt_qargs.push(self.expect_ident()?.0);
                if self.peek().kind == TokenKind::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&TokenKind::Semicolon)?;
            body.push(BodyStmt::Apply {
                name: stmt_name,
                line: stmt_line,
                params: stmt_params,
                qargs: stmt_qargs,
            });
        }
        self.expect(&TokenKind::RBrace)?;
        self.gate_defs.insert(name, GateDef { params, qargs, body });
        Ok(())
    }

    fn barrier_stmt(&mut self) -> Result<(), CircuitError> {
        self.advance(); // barrier
        // Arguments are parsed but the barrier applies as a global
        // breakpoint, matching the tool's stepping semantics.
        while self.peek().kind != TokenKind::Semicolon {
            if self.peek().kind == TokenKind::Eof {
                return Err(CircuitError::parse(self.line(), "unexpected end of input"));
            }
            self.advance();
        }
        self.expect(&TokenKind::Semicolon)?;
        self.ops.push(Operation::Barrier);
        Ok(())
    }

    fn measure_stmt(&mut self) -> Result<(), CircuitError> {
        let line = self.line();
        self.advance(); // measure
        let qarg = self.parse_arg(true)?;
        self.expect(&TokenKind::Arrow)?;
        let carg = self.parse_arg(false)?;
        self.expect(&TokenKind::Semicolon)?;
        let qubits = self.expand_arg(qarg, true);
        let bits = self.expand_arg(carg, false);
        if qubits.len() != bits.len() {
            return Err(CircuitError::parse(
                line,
                format!(
                    "measure arity mismatch: {} qubits vs {} bits",
                    qubits.len(),
                    bits.len()
                ),
            ));
        }
        for (q, b) in qubits.into_iter().zip(bits) {
            self.ops.push(Operation::Measure { qubit: q, bit: b });
        }
        Ok(())
    }

    fn reset_stmt(&mut self) -> Result<(), CircuitError> {
        self.advance(); // reset
        let arg = self.parse_arg(true)?;
        self.expect(&TokenKind::Semicolon)?;
        for q in self.expand_arg(arg, true) {
            self.ops.push(Operation::Reset { qubit: q });
        }
        Ok(())
    }

    fn if_stmt(&mut self) -> Result<(), CircuitError> {
        let line = self.line();
        self.advance(); // if
        self.expect(&TokenKind::LParen)?;
        let (creg_name, _) = self.expect_ident()?;
        self.expect(&TokenKind::EqEq)?;
        let value = self.expect_uint()?;
        self.expect(&TokenKind::RParen)?;
        let creg = self
            .cregs
            .iter()
            .position(|r| r.name == creg_name)
            .ok_or_else(|| {
                CircuitError::parse(line, format!("undeclared classical register `{creg_name}`"))
            })?;
        let condition = Condition { creg, value };
        match &self.peek().kind {
            TokenKind::Ident(w) if w == "measure" || w == "reset" || w == "barrier" => {
                Err(CircuitError::parse(
                    line,
                    "conditioned measure/reset/barrier is not supported",
                ))
            }
            TokenKind::Ident(_) => self.gate_stmt(Some(condition)),
            other => Err(CircuitError::parse(
                line,
                format!("expected gate after if, found {}", other.describe()),
            )),
        }
    }

    /// Parses `name (params)? arg (, arg)* ;` and applies it (broadcast).
    fn gate_stmt(&mut self, condition: Option<Condition>) -> Result<(), CircuitError> {
        let (name, line) = self.expect_ident()?;
        let mut params = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.advance();
            if self.peek().kind != TokenKind::RParen {
                loop {
                    let e = self.parse_expr()?;
                    params.push(e.eval(&HashMap::new(), line)?);
                    if self.peek().kind == TokenKind::Comma {
                        self.advance();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let mut args = Vec::new();
        loop {
            args.push(self.parse_arg(true)?);
            if self.peek().kind == TokenKind::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::Semicolon)?;

        // Broadcasting: all full-register args must share one size.
        let mut broadcast = 1usize;
        for a in &args {
            if let Arg::Reg(r) = a {
                let size = self.qregs[*r].size;
                if broadcast == 1 {
                    broadcast = size;
                } else if size != broadcast {
                    return Err(CircuitError::parse(
                        line,
                        "register size mismatch in broadcast",
                    ));
                }
            }
        }
        for k in 0..broadcast {
            let qubits: Vec<usize> = args
                .iter()
                .map(|a| match a {
                    Arg::Single(q) => *q,
                    Arg::Reg(r) => self.qregs[*r].offset + k,
                })
                .collect();
            let mut distinct = qubits.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() != qubits.len() {
                return Err(CircuitError::parse(
                    line,
                    format!("gate `{name}` applied to duplicate qubits"),
                ));
            }
            self.apply_named(&name, line, &params, &qubits, condition, 0)?;
        }
        Ok(())
    }

    /// Parses `reg` or `reg[i]`.
    fn parse_arg(&mut self, quantum: bool) -> Result<Arg, CircuitError> {
        let (name, line) = self.expect_ident()?;
        let regs = if quantum { &self.qregs } else { &self.cregs };
        let reg_index = regs.iter().position(|r| r.name == name).ok_or_else(|| {
            CircuitError::parse(
                line,
                format!(
                    "undeclared {} register `{name}`",
                    if quantum { "quantum" } else { "classical" }
                ),
            )
        })?;
        let (reg_offset, reg_size) = (regs[reg_index].offset, regs[reg_index].size);
        if self.peek().kind == TokenKind::LBracket {
            self.advance();
            let idx = self.expect_uint()? as usize;
            self.expect(&TokenKind::RBracket)?;
            if idx >= reg_size {
                return Err(CircuitError::parse(
                    line,
                    format!("index {idx} out of range for `{name}[{reg_size}]`"),
                ));
            }
            Ok(Arg::Single(reg_offset + idx))
        } else {
            Ok(Arg::Reg(reg_index))
        }
    }

    fn expand_arg(&self, arg: Arg, quantum: bool) -> Vec<usize> {
        let regs = if quantum { &self.qregs } else { &self.cregs };
        match arg {
            Arg::Single(i) => vec![i],
            Arg::Reg(r) => (0..regs[r].size).map(|k| regs[r].offset + k).collect(),
        }
    }

    // ------------------------------------------------------------------
    // Gate dispatch
    // ------------------------------------------------------------------

    fn apply_named(
        &mut self,
        name: &str,
        line: usize,
        params: &[f64],
        qubits: &[usize],
        condition: Option<Condition>,
        depth: usize,
    ) -> Result<(), CircuitError> {
        if depth > MAX_GATE_EXPANSION_DEPTH {
            return Err(CircuitError::parse(
                line,
                format!(
                    "gate `{name}` expands deeper than {MAX_GATE_EXPANSION_DEPTH} levels \
                     (recursive gate definition?)"
                ),
            ));
        }
        let arity_err = |want_p: usize, want_q: usize| {
            CircuitError::parse(
                line,
                format!(
                    "`{name}` expects {want_p} parameter(s) and {want_q} qubit(s), got {} and {}",
                    params.len(),
                    qubits.len()
                ),
            )
        };
        let check = |want_p: usize, want_q: usize| {
            if params.len() == want_p && qubits.len() == want_q {
                Ok(())
            } else {
                Err(arity_err(want_p, want_q))
            }
        };

        let push_gate = |gate: StandardGate, controls: Vec<Control>, target: usize, ops: &mut Vec<Operation>| {
            let mut app = GateApplication::new(gate, controls, target);
            app.condition = condition;
            ops.push(Operation::Gate(app));
        };

        let simple: Option<StandardGate> = match name {
            "id" => Some(StandardGate::I),
            "x" => Some(StandardGate::X),
            "y" => Some(StandardGate::Y),
            "z" => Some(StandardGate::Z),
            "h" => Some(StandardGate::H),
            "s" => Some(StandardGate::S),
            "sdg" => Some(StandardGate::Sdg),
            "t" => Some(StandardGate::T),
            "tdg" => Some(StandardGate::Tdg),
            "sx" => Some(StandardGate::Sx),
            "sxdg" => Some(StandardGate::Sxdg),
            _ => None,
        };
        if let Some(g) = simple {
            check(0, 1)?;
            let mut ops = std::mem::take(&mut self.ops);
            push_gate(g, vec![], qubits[0], &mut ops);
            self.ops = ops;
            return Ok(());
        }

        let mut ops = std::mem::take(&mut self.ops);
        let result = (|| -> Result<(), CircuitError> {
            match name {
                "U" | "u3" => {
                    check(3, 1)?;
                    push_gate(
                        StandardGate::U(params[0], params[1], params[2]),
                        vec![],
                        qubits[0],
                        &mut ops,
                    );
                }
                "u" => {
                    check(3, 1)?;
                    push_gate(
                        StandardGate::U(params[0], params[1], params[2]),
                        vec![],
                        qubits[0],
                        &mut ops,
                    );
                }
                "u2" => {
                    check(2, 1)?;
                    push_gate(
                        StandardGate::U(FRAC_PI_2, params[0], params[1]),
                        vec![],
                        qubits[0],
                        &mut ops,
                    );
                }
                "u1" | "p" => {
                    check(1, 1)?;
                    push_gate(StandardGate::Phase(params[0]), vec![], qubits[0], &mut ops);
                }
                "rx" => {
                    check(1, 1)?;
                    push_gate(StandardGate::Rx(params[0]), vec![], qubits[0], &mut ops);
                }
                "ry" => {
                    check(1, 1)?;
                    push_gate(StandardGate::Ry(params[0]), vec![], qubits[0], &mut ops);
                }
                "rz" => {
                    check(1, 1)?;
                    push_gate(StandardGate::Rz(params[0]), vec![], qubits[0], &mut ops);
                }
                "CX" | "cx" => {
                    check(0, 2)?;
                    push_gate(
                        StandardGate::X,
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                }
                "cy" => {
                    check(0, 2)?;
                    push_gate(
                        StandardGate::Y,
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                }
                "cz" => {
                    check(0, 2)?;
                    push_gate(
                        StandardGate::Z,
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                }
                "ch" => {
                    check(0, 2)?;
                    push_gate(
                        StandardGate::H,
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                }
                "cp" | "cu1" => {
                    check(1, 2)?;
                    push_gate(
                        StandardGate::Phase(params[0]),
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                }
                "crx" => {
                    check(1, 2)?;
                    push_gate(
                        StandardGate::Rx(params[0]),
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                }
                "cry" => {
                    check(1, 2)?;
                    push_gate(
                        StandardGate::Ry(params[0]),
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                }
                "crz" => {
                    check(1, 2)?;
                    push_gate(
                        StandardGate::Rz(params[0]),
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                }
                "cu3" => {
                    check(3, 2)?;
                    push_gate(
                        StandardGate::U(params[0], params[1], params[2]),
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                }
                "ccx" => {
                    check(0, 3)?;
                    push_gate(
                        StandardGate::X,
                        vec![Control::pos(qubits[0]), Control::pos(qubits[1])],
                        qubits[2],
                        &mut ops,
                    );
                }
                "swap" => {
                    check(0, 2)?;
                    ops.push(Operation::Swap {
                        a: qubits[0],
                        b: qubits[1],
                        controls: vec![],
                    });
                }
                "rzz" => {
                    // exp(-iθ/2 · Z⊗Z) = CX · (I ⊗ RZ(θ)) · CX
                    check(1, 2)?;
                    push_gate(
                        StandardGate::X,
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                    push_gate(StandardGate::Rz(params[0]), vec![], qubits[1], &mut ops);
                    push_gate(
                        StandardGate::X,
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                }
                "rxx" => {
                    // H-conjugation maps Z⊗Z to X⊗X.
                    check(1, 2)?;
                    for &q in &qubits[..2] {
                        push_gate(StandardGate::H, vec![], q, &mut ops);
                    }
                    push_gate(
                        StandardGate::X,
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                    push_gate(StandardGate::Rz(params[0]), vec![], qubits[1], &mut ops);
                    push_gate(
                        StandardGate::X,
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                    for &q in &qubits[..2] {
                        push_gate(StandardGate::H, vec![], q, &mut ops);
                    }
                }
                "ryy" => {
                    // RX(π/2)-conjugation maps Z⊗Z to Y⊗Y.
                    check(1, 2)?;
                    for &q in &qubits[..2] {
                        push_gate(StandardGate::Rx(FRAC_PI_2), vec![], q, &mut ops);
                    }
                    push_gate(
                        StandardGate::X,
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                    push_gate(StandardGate::Rz(params[0]), vec![], qubits[1], &mut ops);
                    push_gate(
                        StandardGate::X,
                        vec![Control::pos(qubits[0])],
                        qubits[1],
                        &mut ops,
                    );
                    for &q in &qubits[..2] {
                        push_gate(StandardGate::Rx(-FRAC_PI_2), vec![], q, &mut ops);
                    }
                }
                "cswap" => {
                    check(0, 3)?;
                    ops.push(Operation::Swap {
                        a: qubits[1],
                        b: qubits[2],
                        controls: vec![Control::pos(qubits[0])],
                    });
                }
                mc if mc.starts_with("mc") && qubits.len() >= 2 => {
                    // Our serialization extension: mc<base> c0,..,ck,target.
                    let base = &mc[2..];
                    let gate = match (base, params.len()) {
                        ("x", 0) => StandardGate::X,
                        ("y", 0) => StandardGate::Y,
                        ("z", 0) => StandardGate::Z,
                        ("h", 0) => StandardGate::H,
                        ("p", 1) => StandardGate::Phase(params[0]),
                        ("rx", 1) => StandardGate::Rx(params[0]),
                        ("ry", 1) => StandardGate::Ry(params[0]),
                        ("rz", 1) => StandardGate::Rz(params[0]),
                        ("u", 3) => StandardGate::U(params[0], params[1], params[2]),
                        _ => {
                            return Err(CircuitError::parse(
                                line,
                                format!("unknown multi-controlled gate `{mc}`"),
                            ))
                        }
                    };
                    let (target, controls) = qubits.split_last().expect("len >= 2");
                    let ctrls = controls.iter().map(|&q| Control::pos(q)).collect();
                    push_gate(gate, ctrls, *target, &mut ops);
                }
                other => {
                    let def = self.gate_defs.get(other).cloned().ok_or_else(|| {
                        CircuitError::parse(line, format!("unknown gate `{other}`"))
                    })?;
                    if def.params.len() != params.len() || def.qargs.len() != qubits.len() {
                        return Err(arity_err(def.params.len(), def.qargs.len()));
                    }
                    let bindings: HashMap<String, f64> = def
                        .params
                        .iter()
                        .cloned()
                        .zip(params.iter().copied())
                        .collect();
                    let qmap: HashMap<String, usize> = def
                        .qargs
                        .iter()
                        .cloned()
                        .zip(qubits.iter().copied())
                        .collect();
                    self.ops = std::mem::take(&mut ops);
                    for stmt in &def.body {
                        match stmt {
                            BodyStmt::Barrier => self.ops.push(Operation::Barrier),
                            BodyStmt::Apply {
                                name,
                                line,
                                params,
                                qargs,
                            } => {
                                let vals: Vec<f64> = params
                                    .iter()
                                    .map(|e| e.eval(&bindings, *line))
                                    .collect::<Result<_, _>>()?;
                                let qs: Vec<usize> = qargs
                                    .iter()
                                    .map(|q| {
                                        qmap.get(q).copied().ok_or_else(|| {
                                            CircuitError::parse(
                                                *line,
                                                format!("unknown gate argument `{q}`"),
                                            )
                                        })
                                    })
                                    .collect::<Result<_, _>>()?;
                                self.apply_named(name, *line, &vals, &qs, condition, depth + 1)?;
                            }
                        }
                    }
                    ops = std::mem::take(&mut self.ops);
                }
            }
            Ok(())
        })();
        self.ops = ops;
        result
    }

    // ------------------------------------------------------------------
    // Expression parsing (precedence climbing)
    // ------------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, CircuitError> {
        let mut lhs = self.parse_term()?;
        loop {
            match self.peek().kind {
                TokenKind::Plus => {
                    self.advance();
                    let rhs = self.parse_term()?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                TokenKind::Minus => {
                    self.advance();
                    let rhs = self.parse_term()?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr, CircuitError> {
        let mut lhs = self.parse_factor()?;
        loop {
            match self.peek().kind {
                TokenKind::Star => {
                    self.advance();
                    let rhs = self.parse_factor()?;
                    lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
                }
                TokenKind::Slash => {
                    self.advance();
                    let rhs = self.parse_factor()?;
                    lhs = Expr::Div(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_factor(&mut self) -> Result<Expr, CircuitError> {
        // Every recursive expression path (parentheses, unary signs, powers,
        // function calls) passes through here, so this single counter bounds
        // the whole descent against stack-overflowing input.
        self.expr_depth += 1;
        if self.expr_depth > MAX_EXPR_DEPTH {
            self.expr_depth -= 1;
            return Err(CircuitError::parse(
                self.line(),
                format!("parameter expression nested deeper than {MAX_EXPR_DEPTH} levels"),
            ));
        }
        let result = match self.peek().kind.clone() {
            TokenKind::Minus => {
                self.advance();
                let inner = self.parse_factor()?;
                Ok(Expr::Neg(Box::new(inner)))
            }
            TokenKind::Plus => {
                self.advance();
                self.parse_factor()
            }
            _ => {
                let base = self.parse_primary()?;
                if self.peek().kind == TokenKind::Caret {
                    self.advance();
                    let exp = self.parse_factor()?;
                    Ok(Expr::Pow(Box::new(base), Box::new(exp)))
                } else {
                    Ok(base)
                }
            }
        };
        self.expr_depth -= 1;
        result
    }

    fn parse_primary(&mut self) -> Result<Expr, CircuitError> {
        let t = self.advance();
        match t.kind {
            TokenKind::Number(v) => Ok(Expr::Num(v)),
            TokenKind::Ident(name) if name == "pi" => Ok(Expr::Pi),
            TokenKind::Ident(name) => {
                if self.peek().kind == TokenKind::LParen {
                    self.advance();
                    let arg = self.parse_expr()?;
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call(name, Box::new(arg)))
                } else {
                    Ok(Expr::Param(name))
                }
            }
            TokenKind::LParen => {
                let inner = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            other => Err(CircuitError::parse(
                t.line,
                format!("expected expression, found {}", other.describe()),
            )),
        }
    }

    // ------------------------------------------------------------------

    fn into_circuit(self) -> Result<QuantumCircuit, CircuitError> {
        let total: usize = self.qregs.iter().map(|r| r.size).sum();
        if total == 0 {
            return Err(CircuitError::parse(1, "no quantum register declared"));
        }
        let mut qc = QuantumCircuit::with_name(total, "qasm");
        qc.set_qregs(
            self.qregs
                .iter()
                .map(|r| QuantumRegister {
                    name: r.name.clone(),
                    offset: r.offset,
                    size: r.size,
                })
                .collect(),
        );
        for r in &self.cregs {
            qc.add_creg(r.name.clone(), r.size);
        }
        for op in self.ops {
            qc.append(op);
        }
        Ok(qc)
    }
}
