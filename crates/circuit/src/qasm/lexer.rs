//! Tokenizer for OpenQASM 2.0.
//!
//! Like the parser, this is an untrusted-input boundary: malformed source
//! must yield [`CircuitError::Parse`], never a panic.
#![warn(clippy::unwrap_used)]

use crate::error::CircuitError;

/// A lexical token with its source line (1-based).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

#[derive(Clone, Debug, PartialEq)]
pub(crate) enum TokenKind {
    Ident(String),
    Number(f64),
    Str(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semicolon,
    Comma,
    Arrow,
    EqEq,
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    Eof,
}

impl TokenKind {
    pub(crate) fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Number(n) => format!("number `{n}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Semicolon => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Caret => "`^`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Tokenizes QASM source, stripping `//` line comments.
pub(crate) fn tokenize(src: &str) -> Result<Vec<Token>, CircuitError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token { kind: TokenKind::LParen, line });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::RParen, line });
                i += 1;
            }
            '[' => {
                out.push(Token { kind: TokenKind::LBracket, line });
                i += 1;
            }
            ']' => {
                out.push(Token { kind: TokenKind::RBracket, line });
                i += 1;
            }
            '{' => {
                out.push(Token { kind: TokenKind::LBrace, line });
                i += 1;
            }
            '}' => {
                out.push(Token { kind: TokenKind::RBrace, line });
                i += 1;
            }
            ';' => {
                out.push(Token { kind: TokenKind::Semicolon, line });
                i += 1;
            }
            ',' => {
                out.push(Token { kind: TokenKind::Comma, line });
                i += 1;
            }
            '+' => {
                out.push(Token { kind: TokenKind::Plus, line });
                i += 1;
            }
            '*' => {
                out.push(Token { kind: TokenKind::Star, line });
                i += 1;
            }
            '/' => {
                out.push(Token { kind: TokenKind::Slash, line });
                i += 1;
            }
            '^' => {
                out.push(Token { kind: TokenKind::Caret, line });
                i += 1;
            }
            '-' => {
                if i + 1 < n && bytes[i + 1] == '>' {
                    out.push(Token { kind: TokenKind::Arrow, line });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Minus, line });
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == '=' {
                    out.push(Token { kind: TokenKind::EqEq, line });
                    i += 2;
                } else {
                    return Err(CircuitError::parse(line, "single `=` (expected `==`)"));
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < n && bytes[j] != '"' {
                    if bytes[j] == '\n' {
                        return Err(CircuitError::parse(line, "unterminated string"));
                    }
                    j += 1;
                }
                if j >= n {
                    return Err(CircuitError::parse(line, "unterminated string"));
                }
                let s: String = bytes[start..j].iter().collect();
                out.push(Token { kind: TokenKind::Str(s), line });
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut j = i;
                let mut seen_e = false;
                while j < n {
                    let d = bytes[j];
                    if d.is_ascii_digit() || d == '.' {
                        j += 1;
                    } else if (d == 'e' || d == 'E') && !seen_e {
                        seen_e = true;
                        j += 1;
                        if j < n && (bytes[j] == '+' || bytes[j] == '-') {
                            j += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text: String = bytes[start..j].iter().collect();
                let value: f64 = text
                    .parse()
                    .map_err(|_| CircuitError::parse(line, format!("bad number `{text}`")))?;
                out.push(Token { kind: TokenKind::Number(value), line });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < n && (bytes[j].is_ascii_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                out.push(Token { kind: TokenKind::Ident(text), line });
                i = j;
            }
            other => {
                return Err(CircuitError::parse(line, format!("unexpected character `{other}`")));
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, line });
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_basic_statement() {
        let toks = tokenize("h q[0];").unwrap();
        let kinds: Vec<_> = toks.iter().map(|t| t.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Ident("h".into()),
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Number(0.0),
                TokenKind::RBracket,
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strips_comments_and_counts_lines() {
        let toks = tokenize("// header\nqreg q[1]; // trailing\nh q[0];").unwrap();
        let h = toks
            .iter()
            .find(|t| t.kind == TokenKind::Ident("h".into()))
            .unwrap();
        assert_eq!(h.line, 3);
    }

    #[test]
    fn arrow_and_eqeq() {
        let toks = tokenize("measure q -> c; if (c == 2)").unwrap();
        assert!(toks.iter().any(|t| t.kind == TokenKind::Arrow));
        assert!(toks.iter().any(|t| t.kind == TokenKind::EqEq));
    }

    #[test]
    fn scientific_notation() {
        let toks = tokenize("rx(1.5e-3)").unwrap();
        assert!(toks
            .iter()
            .any(|t| matches!(t.kind, TokenKind::Number(v) if (v - 1.5e-3).abs() < 1e-12)));
    }

    #[test]
    fn rejects_single_equals() {
        assert!(tokenize("if (c = 1)").is_err());
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("include \"qelib1.inc;").is_err());
    }
}
