//! Measurement-regime analysis: which shot-sampling strategy is *correct*
//! for a circuit.
//!
//! Repeated non-destructive sampling of the final DD (paper §III-B, ref
//! \[16\]) is only equivalent to running the circuit once per shot when no
//! collapse happens *before* the end of the circuit. This module classifies
//! a circuit into the three regimes the shot engine dispatches on:
//!
//! | regime | meaning | correct strategy |
//! |---|---|---|
//! | [`NoMeasurement`](MeasurementRegime::NoMeasurement) | purely unitary | run once, sample the final state |
//! | [`TerminalMeasurement`](MeasurementRegime::TerminalMeasurement) | all measurements at the very end | run the unitary prefix once, sample paths, read bits off each sample |
//! | [`MidCircuit`](MeasurementRegime::MidCircuit) | collapse feeds back into evolution | re-execute per shot |
//!
//! The classification is deliberately conservative: resets and
//! classically-conditioned gates are always `MidCircuit`, because both make
//! the evolution depend on a collapse outcome. A conservative answer is
//! never *wrong* — it only forgoes the fast path.

use crate::circuit::QuantumCircuit;
use crate::op::Operation;

/// The measurement structure of a circuit, from the shot engine's point of
/// view.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MeasurementRegime {
    /// No measurements, resets, or classically-conditioned gates: the final
    /// state is deterministic and can be sampled non-destructively.
    NoMeasurement,
    /// Measurements exist but only as a trailing block (interleaved with
    /// barriers at most): the unitary prefix runs once and every shot is a
    /// single path traversal whose sampled bits *are* the measurement
    /// outcomes — deferred-measurement made operational.
    TerminalMeasurement,
    /// A measurement or reset occurs before further evolution, or a gate is
    /// classically conditioned: outcomes feed back, so each shot must
    /// re-execute the circuit with its own random stream.
    MidCircuit,
}

impl MeasurementRegime {
    /// Stable lower-case label (telemetry fields, CLI output).
    pub fn name(self) -> &'static str {
        match self {
            MeasurementRegime::NoMeasurement => "no-measurement",
            MeasurementRegime::TerminalMeasurement => "terminal-measurement",
            MeasurementRegime::MidCircuit => "mid-circuit",
        }
    }
}

impl std::fmt::Display for MeasurementRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of [`QuantumCircuit::measurement_analysis`]: the regime plus
/// the facts the shot engine's fast paths need.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeasurementAnalysis {
    /// The sampling regime.
    pub regime: MeasurementRegime,
    /// Number of leading operations before the first measurement — in the
    /// [`TerminalMeasurement`](MeasurementRegime::TerminalMeasurement)
    /// regime this prefix is purely unitary (gates, swaps, barriers).
    pub prefix_len: usize,
    /// The trailing `(qubit, bit)` measurements in program order (meaningful
    /// in the terminal regime; later writes to the same bit win, matching
    /// per-shot execution order).
    pub terminal_measurements: Vec<(usize, usize)>,
    /// Whether any measurement writes classical bits (decides whether shots
    /// histogram classical-register values or basis states).
    pub has_measurements: bool,
    /// Whether the circuit contains resets.
    pub has_resets: bool,
    /// Whether any gate carries a classical condition.
    pub has_conditions: bool,
}

impl QuantumCircuit {
    /// Classifies the circuit's measurement structure (see
    /// [`MeasurementRegime`]).
    pub fn measurement_analysis(&self) -> MeasurementAnalysis {
        let mut has_measurements = false;
        let mut has_resets = false;
        let mut has_conditions = false;
        let mut first_measure: Option<usize> = None;
        // True while every op since the first measurement has been a
        // measurement or barrier — the terminal-block invariant.
        let mut tail_is_terminal = true;
        for (i, op) in self.ops().iter().enumerate() {
            match op {
                Operation::Measure { .. } => {
                    has_measurements = true;
                    first_measure.get_or_insert(i);
                }
                Operation::Reset { .. } => has_resets = true,
                Operation::Barrier => {}
                Operation::Gate(g) => {
                    if g.condition.is_some() {
                        has_conditions = true;
                    }
                    if first_measure.is_some() {
                        tail_is_terminal = false;
                    }
                }
                Operation::Swap { .. } => {
                    if first_measure.is_some() {
                        tail_is_terminal = false;
                    }
                }
            }
        }
        // A reset inside the tail also breaks the terminal block.
        if has_resets {
            if let Some(fm) = first_measure {
                if self.ops()[fm..]
                    .iter()
                    .any(|op| matches!(op, Operation::Reset { .. }))
                {
                    tail_is_terminal = false;
                }
            }
        }
        let regime = if has_resets || has_conditions {
            MeasurementRegime::MidCircuit
        } else if !has_measurements {
            MeasurementRegime::NoMeasurement
        } else if tail_is_terminal {
            MeasurementRegime::TerminalMeasurement
        } else {
            MeasurementRegime::MidCircuit
        };
        let prefix_len = first_measure.unwrap_or(self.len());
        let terminal_measurements = if regime == MeasurementRegime::TerminalMeasurement {
            self.ops()[prefix_len..]
                .iter()
                .filter_map(|op| match op {
                    Operation::Measure { qubit, bit } => Some((*qubit, *bit)),
                    _ => None,
                })
                .collect()
        } else {
            Vec::new()
        };
        MeasurementAnalysis {
            regime,
            prefix_len,
            terminal_measurements,
            has_measurements,
            has_resets,
            has_conditions,
        }
    }

    /// Shorthand for `measurement_analysis().regime`.
    pub fn measurement_regime(&self) -> MeasurementRegime {
        self.measurement_analysis().regime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn unitary_circuits_have_no_measurement() {
        for qc in [library::ghz(5), library::qft(4, true), library::grover(3, 5)] {
            let a = qc.measurement_analysis();
            assert_eq!(a.regime, MeasurementRegime::NoMeasurement, "{}", qc.name());
            assert_eq!(a.prefix_len, qc.len());
            assert!(!a.has_measurements);
        }
    }

    #[test]
    fn trailing_measure_all_is_terminal() {
        let mut qc = library::ghz(4);
        let gates = qc.len();
        qc.barrier().measure_all();
        let a = qc.measurement_analysis();
        assert_eq!(a.regime, MeasurementRegime::TerminalMeasurement);
        assert_eq!(a.prefix_len, gates + 1, "barrier belongs to the prefix");
        assert_eq!(
            a.terminal_measurements,
            vec![(0, 0), (1, 1), (2, 2), (3, 3)]
        );
    }

    #[test]
    fn barriers_between_terminal_measurements_are_allowed() {
        let mut qc = QuantumCircuit::new(2);
        qc.add_creg("c", 2);
        qc.h(0).measure(0, 0).barrier().measure(1, 1);
        assert_eq!(
            qc.measurement_regime(),
            MeasurementRegime::TerminalMeasurement
        );
    }

    #[test]
    fn gate_after_measurement_is_mid_circuit() {
        let mut qc = QuantumCircuit::new(2);
        qc.add_creg("c", 1);
        qc.h(0).measure(0, 0).h(1);
        assert_eq!(qc.measurement_regime(), MeasurementRegime::MidCircuit);
    }

    #[test]
    fn swap_after_measurement_is_mid_circuit() {
        let mut qc = QuantumCircuit::new(2);
        qc.add_creg("c", 1);
        qc.measure(0, 0).swap(0, 1);
        assert_eq!(qc.measurement_regime(), MeasurementRegime::MidCircuit);
    }

    #[test]
    fn resets_and_conditions_are_mid_circuit() {
        let mut with_reset = QuantumCircuit::new(2);
        with_reset.h(0).reset(0);
        let a = with_reset.measurement_analysis();
        assert_eq!(a.regime, MeasurementRegime::MidCircuit);
        assert!(a.has_resets && !a.has_measurements);

        let teleport = library::teleportation(0.3);
        let a = teleport.measurement_analysis();
        assert_eq!(a.regime, MeasurementRegime::MidCircuit);
        assert!(a.has_conditions);
    }

    #[test]
    fn reset_in_measurement_tail_is_mid_circuit() {
        let mut qc = QuantumCircuit::new(2);
        qc.add_creg("c", 2);
        qc.h(0).measure(0, 0).reset(1).measure(1, 1);
        assert_eq!(qc.measurement_regime(), MeasurementRegime::MidCircuit);
    }
}
