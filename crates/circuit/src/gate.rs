//! The single-qubit standard gate set.

use qdd_core::gates::{self, GateMatrix};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};
use std::fmt;

/// A named single-qubit gate (possibly parameterized).
///
/// Controlled and multi-qubit gates are represented at the
/// [`Operation`](crate::Operation) level by attaching controls to one of
/// these or by dedicated variants (SWAP); this mirrors how the DD package
/// constructs operators.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum StandardGate {
    /// Identity.
    I,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate `P(π/2)`.
    S,
    /// Inverse phase gate `P(-π/2)`.
    Sdg,
    /// `P(π/4)`.
    T,
    /// `P(-π/4)`.
    Tdg,
    /// Square root of X.
    Sx,
    /// Inverse square root of X.
    Sxdg,
    /// Phase gate `P(θ) = diag(1, e^{iθ})`.
    Phase(f64),
    /// Rotation about X.
    Rx(f64),
    /// Rotation about Y.
    Ry(f64),
    /// Rotation about Z.
    Rz(f64),
    /// The generic `U(θ, φ, λ)` of OpenQASM 2.
    U(f64, f64, f64),
}

impl StandardGate {
    /// The gate's 2×2 unitary.
    pub fn matrix(self) -> GateMatrix {
        match self {
            StandardGate::I => gates::I,
            StandardGate::H => gates::H,
            StandardGate::X => gates::X,
            StandardGate::Y => gates::Y,
            StandardGate::Z => gates::Z,
            StandardGate::S => gates::S,
            StandardGate::Sdg => gates::SDG,
            StandardGate::T => gates::t(),
            StandardGate::Tdg => gates::tdg(),
            StandardGate::Sx => gates::SX,
            StandardGate::Sxdg => gates::adjoint(&gates::SX),
            StandardGate::Phase(theta) => gates::phase(theta),
            StandardGate::Rx(theta) => gates::rx(theta),
            StandardGate::Ry(theta) => gates::ry(theta),
            StandardGate::Rz(theta) => gates::rz(theta),
            StandardGate::U(theta, phi, lambda) => gates::u3(theta, phi, lambda),
        }
    }

    /// The inverse gate (`g · g.inverse() = I`), staying within the
    /// standard set.
    pub fn inverse(self) -> StandardGate {
        match self {
            StandardGate::I => StandardGate::I,
            StandardGate::H => StandardGate::H,
            StandardGate::X => StandardGate::X,
            StandardGate::Y => StandardGate::Y,
            StandardGate::Z => StandardGate::Z,
            StandardGate::S => StandardGate::Sdg,
            StandardGate::Sdg => StandardGate::S,
            StandardGate::T => StandardGate::Tdg,
            StandardGate::Tdg => StandardGate::T,
            StandardGate::Sx => StandardGate::Sxdg,
            StandardGate::Sxdg => StandardGate::Sx,
            StandardGate::Phase(theta) => StandardGate::Phase(-theta),
            StandardGate::Rx(theta) => StandardGate::Rx(-theta),
            StandardGate::Ry(theta) => StandardGate::Ry(-theta),
            StandardGate::Rz(theta) => StandardGate::Rz(-theta),
            StandardGate::U(theta, phi, lambda) => StandardGate::U(-theta, -lambda, -phi),
        }
    }

    /// `true` if the gate is diagonal in the computational basis (its DD is
    /// a chain without branching — relevant for compactness experiments).
    pub fn is_diagonal(self) -> bool {
        matches!(
            self,
            StandardGate::I
                | StandardGate::Z
                | StandardGate::S
                | StandardGate::Sdg
                | StandardGate::T
                | StandardGate::Tdg
                | StandardGate::Phase(_)
                | StandardGate::Rz(_)
        )
    }

    /// The canonical lowercase OpenQASM-style mnemonic (without parameters).
    pub fn name(self) -> &'static str {
        match self {
            StandardGate::I => "id",
            StandardGate::H => "h",
            StandardGate::X => "x",
            StandardGate::Y => "y",
            StandardGate::Z => "z",
            StandardGate::S => "s",
            StandardGate::Sdg => "sdg",
            StandardGate::T => "t",
            StandardGate::Tdg => "tdg",
            StandardGate::Sx => "sx",
            StandardGate::Sxdg => "sxdg",
            StandardGate::Phase(_) => "p",
            StandardGate::Rx(_) => "rx",
            StandardGate::Ry(_) => "ry",
            StandardGate::Rz(_) => "rz",
            StandardGate::U(..) => "u",
        }
    }

    /// Simplifies a parameterized gate to a named one when the parameters
    /// hit a special angle (e.g. `P(π/2)` → `S`), used by pretty-printers.
    pub fn simplified(self) -> StandardGate {
        const TOL: f64 = 1e-12;
        if let StandardGate::Phase(theta) = self {
            for (angle, gate) in [
                (FRAC_PI_2, StandardGate::S),
                (-FRAC_PI_2, StandardGate::Sdg),
                (FRAC_PI_4, StandardGate::T),
                (-FRAC_PI_4, StandardGate::Tdg),
                (PI, StandardGate::Z),
                (0.0, StandardGate::I),
            ] {
                if (theta - angle).abs() < TOL {
                    return gate;
                }
            }
        }
        self
    }

    /// The parameters, if any, in OpenQASM argument order.
    pub fn params(self) -> Vec<f64> {
        match self {
            StandardGate::Phase(t) | StandardGate::Rx(t) | StandardGate::Ry(t) | StandardGate::Rz(t) => {
                vec![t]
            }
            StandardGate::U(t, p, l) => vec![t, p, l],
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for StandardGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let rendered: Vec<String> = params.iter().map(|p| format_angle(*p)).collect();
            write!(f, "{}({})", self.name(), rendered.join(","))
        }
    }
}

/// Formats an angle, preferring exact `pi` fractions — matching the paper's
/// `P(π/4)`, `P(π/8)` notation.
pub(crate) fn format_angle(theta: f64) -> String {
    const TOL: f64 = 1e-12;
    if theta.abs() < TOL {
        return "0".to_string();
    }
    for denom in [1i32, 2, 3, 4, 6, 8, 16, 32] {
        let unit = PI / denom as f64;
        let ratio = theta / unit;
        if (ratio - ratio.round()).abs() < TOL && ratio.round().abs() <= 32.0 {
            let num = ratio.round() as i64;
            return match (num, denom) {
                (1, 1) => "pi".to_string(),
                (-1, 1) => "-pi".to_string(),
                (1, d) => format!("pi/{d}"),
                (-1, d) => format!("-pi/{d}"),
                (n, 1) => format!("{n}*pi"),
                (n, d) => format!("{n}*pi/{d}"),
            };
        }
    }
    format!("{theta}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_core::gates::{approx_eq, is_unitary, matmul, I};

    #[test]
    fn every_gate_is_unitary() {
        let all = [
            StandardGate::I,
            StandardGate::H,
            StandardGate::X,
            StandardGate::Y,
            StandardGate::Z,
            StandardGate::S,
            StandardGate::Sdg,
            StandardGate::T,
            StandardGate::Tdg,
            StandardGate::Sx,
            StandardGate::Sxdg,
            StandardGate::Phase(0.37),
            StandardGate::Rx(1.1),
            StandardGate::Ry(-0.4),
            StandardGate::Rz(2.6),
            StandardGate::U(0.3, 1.4, -2.0),
        ];
        for g in all {
            assert!(is_unitary(&g.matrix(), 1e-12), "{g}");
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        let all = [
            StandardGate::H,
            StandardGate::S,
            StandardGate::T,
            StandardGate::Sx,
            StandardGate::Sxdg,
            StandardGate::Phase(0.9),
            StandardGate::Rx(0.5),
            StandardGate::Ry(1.5),
            StandardGate::Rz(-0.8),
            StandardGate::U(0.2, 0.7, 1.3),
        ];
        for g in all {
            let prod = matmul(&g.inverse().matrix(), &g.matrix());
            assert!(approx_eq(&prod, &I, 1e-12), "{g} inverse failed");
        }
    }

    #[test]
    fn simplification_of_special_phases() {
        assert_eq!(StandardGate::Phase(FRAC_PI_2).simplified(), StandardGate::S);
        assert_eq!(StandardGate::Phase(-FRAC_PI_4).simplified(), StandardGate::Tdg);
        assert_eq!(StandardGate::Phase(PI).simplified(), StandardGate::Z);
        assert_eq!(
            StandardGate::Phase(0.123).simplified(),
            StandardGate::Phase(0.123)
        );
    }

    #[test]
    fn display_uses_pi_fractions() {
        assert_eq!(StandardGate::Phase(FRAC_PI_4).to_string(), "p(pi/4)");
        assert_eq!(StandardGate::Phase(-PI / 8.0).to_string(), "p(-pi/8)");
        assert_eq!(StandardGate::Rz(PI).to_string(), "rz(pi)");
        assert_eq!(StandardGate::H.to_string(), "h");
        assert_eq!(
            StandardGate::Phase(3.0 * FRAC_PI_4).to_string(),
            "p(3*pi/4)"
        );
    }

    #[test]
    fn diagonal_classification() {
        assert!(StandardGate::T.is_diagonal());
        assert!(StandardGate::Rz(0.3).is_diagonal());
        assert!(!StandardGate::H.is_diagonal());
        assert!(!StandardGate::Sx.is_diagonal());
    }
}
