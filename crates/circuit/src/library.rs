//! Generators for the circuits the paper discusses and the experiments use.

use crate::circuit::QuantumCircuit;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// The paper's Fig. 1(c): `H(q1)` then `CNOT(q1 → q0)` — Bell-state
/// preparation from `|00⟩`.
pub fn bell() -> QuantumCircuit {
    let mut qc = QuantumCircuit::with_name(2, "bell");
    qc.h(1).cx(1, 0);
    qc
}

/// GHZ-state preparation on `n` qubits: `H` on the MSB then a CNOT cascade.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ghz(n: usize) -> QuantumCircuit {
    let mut qc = QuantumCircuit::with_name(n, format!("ghz_{n}"));
    qc.h(n - 1);
    for q in (0..n - 1).rev() {
        qc.cx(q + 1, q);
    }
    qc
}

/// W-state preparation on `n` qubits via a chain of controlled rotations.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn w_state(n: usize) -> QuantumCircuit {
    let mut qc = QuantumCircuit::with_name(n, format!("w_{n}"));
    qc.x(n - 1);
    for k in 0..n - 1 {
        let ctrl = n - 1 - k;
        let tgt = n - 2 - k;
        let theta = 2.0 * (1.0 / ((n - k) as f64)).sqrt().acos();
        qc.cry(theta, ctrl, tgt);
        qc.cx(tgt, ctrl);
    }
    qc
}

/// The Quantum Fourier Transform on `n` qubits (paper Fig. 5(a) for `n=3`):
/// Hadamards, controlled phase rotations `P(π/2ᵏ)`, and (optionally) the
/// final qubit-reversal SWAPs.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn qft(n: usize, include_swaps: bool) -> QuantumCircuit {
    let mut qc = QuantumCircuit::with_name(n, format!("qft_{n}"));
    for i in (0..n).rev() {
        qc.h(i);
        for j in (0..i).rev() {
            let k = i - j;
            qc.cp(PI / (1u64 << k) as f64, j, i);
        }
    }
    if include_swaps {
        for k in 0..n / 2 {
            qc.swap(k, n - 1 - k);
        }
    }
    qc
}

/// Inverse QFT.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn iqft(n: usize, include_swaps: bool) -> QuantumCircuit {
    let mut qc = qft(n, include_swaps).inverse().expect("qft is unitary");
    qc.set_name(format!("iqft_{n}"));
    qc
}

/// Grover search on `n` qubits for the `marked` basis state, with the
/// canonical `⌊π/4·√2ⁿ⌋` iterations of phase oracle plus diffusion.
///
/// # Panics
///
/// Panics if `n < 2` or `marked ≥ 2ⁿ`.
pub fn grover(n: usize, marked: u64) -> QuantumCircuit {
    assert!(n >= 2, "grover needs at least 2 qubits");
    assert!(marked < (1u64 << n), "marked state out of range");
    let mut qc = QuantumCircuit::with_name(n, format!("grover_{n}_{marked}"));
    for q in 0..n {
        qc.h(q);
    }
    let iterations = ((PI / 4.0) * ((1u64 << n) as f64).sqrt()).floor().max(1.0) as usize;
    let all_but_last: Vec<usize> = (0..n - 1).collect();
    for _ in 0..iterations {
        // Phase oracle: flip the sign of |marked⟩.
        for q in 0..n {
            if (marked >> q) & 1 == 0 {
                qc.x(q);
            }
        }
        qc.mcz(&all_but_last, n - 1);
        for q in 0..n {
            if (marked >> q) & 1 == 0 {
                qc.x(q);
            }
        }
        // Diffusion operator.
        for q in 0..n {
            qc.h(q);
        }
        for q in 0..n {
            qc.x(q);
        }
        qc.mcz(&all_but_last, n - 1);
        for q in 0..n {
            qc.x(q);
        }
        for q in 0..n {
            qc.h(q);
        }
    }
    qc
}

/// Bernstein–Vazirani for an `n`-bit `secret`: one query reveals the whole
/// string. Qubit 0 is the phase ancilla; the data qubits are `1..=n`.
///
/// # Panics
///
/// Panics if `n == 0` or `secret ≥ 2ⁿ`.
pub fn bernstein_vazirani(n: usize, secret: u64) -> QuantumCircuit {
    assert!(n > 0, "need at least one data qubit");
    assert!(secret < (1u64 << n), "secret out of range");
    let mut qc = QuantumCircuit::with_name(n + 1, format!("bv_{n}_{secret}"));
    qc.x(0);
    for q in 0..=n {
        qc.h(q);
    }
    for b in 0..n {
        if (secret >> b) & 1 == 1 {
            qc.cx(b + 1, 0);
        }
    }
    for q in 1..=n {
        qc.h(q);
    }
    qc
}

/// Quantum teleportation of qubit `q2`'s state to `q0`, including the
/// measurements and classically-controlled corrections of paper §IV-B.
///
/// The message qubit is prepared with `RY(θ)`; classical registers `m1`
/// (X-correction bit, from `q1`) and `m2` (Z-correction bit, from `q2`)
/// record the Bell measurement.
pub fn teleportation(theta: f64) -> QuantumCircuit {
    let mut qc = QuantumCircuit::with_name(3, "teleportation");
    let m1 = qc.add_creg("m1", 1);
    let m2 = qc.add_creg("m2", 1);
    // Prepare the message on q2.
    qc.ry(theta, 2);
    qc.barrier();
    // Bell pair on q1, q0.
    qc.h(1).cx(1, 0);
    qc.barrier();
    // Bell measurement of q2, q1.
    qc.cx(2, 1).h(2);
    qc.measure(1, 0).measure(2, 1);
    // Classically-controlled corrections on q0.
    qc.gate_if(
        crate::StandardGate::X,
        vec![],
        0,
        crate::Condition { creg: m1, value: 1 },
    );
    qc.gate_if(
        crate::StandardGate::Z,
        vec![],
        0,
        crate::Condition { creg: m2, value: 1 },
    );
    qc
}

/// A Cuccaro ripple-carry adder computing `b ← a + b` with carry-out.
///
/// Layout (LSB-first): `q0` = carry-in, then alternating `a₀ b₀ a₁ b₁ …`,
/// and the top qubit as carry-out — `2n + 2` qubits for `n`-bit operands.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn cuccaro_adder(n: usize) -> QuantumCircuit {
    assert!(n > 0, "adder needs at least one bit");
    let mut qc = QuantumCircuit::with_name(2 * n + 2, format!("adder_{n}"));
    let a = |i: usize| 1 + 2 * i;
    let b = |i: usize| 2 + 2 * i;
    let cin = 0usize;
    let cout = 2 * n + 1;
    let maj = |qc: &mut QuantumCircuit, c: usize, bq: usize, aq: usize| {
        qc.cx(aq, bq);
        qc.cx(aq, c);
        qc.ccx(c, bq, aq);
    };
    let uma = |qc: &mut QuantumCircuit, c: usize, bq: usize, aq: usize| {
        qc.ccx(c, bq, aq);
        qc.cx(aq, c);
        qc.cx(c, bq);
    };
    maj(&mut qc, cin, b(0), a(0));
    for i in 1..n {
        maj(&mut qc, a(i - 1), b(i), a(i));
    }
    qc.cx(a(n - 1), cout);
    for i in (1..n).rev() {
        uma(&mut qc, a(i - 1), b(i), a(i));
    }
    uma(&mut qc, cin, b(0), a(0));
    qc
}

/// Quantum phase estimation of the eigenphase `θ` of `P(2πθ)` acting on a
/// `|1⟩`-prepared eigenstate qubit, with `n` counting qubits.
///
/// The counting register occupies qubits `1..=n` (qubit 0 holds the
/// eigenstate) and ends holding `round(θ·2ⁿ)` directly (counting qubit `q`
/// receives the `2^{n-q}` power so no bit-reversal is needed after the
/// swap-free inverse QFT).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn phase_estimation(n: usize, theta: f64) -> QuantumCircuit {
    assert!(n > 0, "need at least one counting qubit");
    let mut qc = QuantumCircuit::with_name(n + 1, format!("qpe_{n}"));
    qc.x(0); // eigenstate |1⟩ of the phase gate
    for q in 1..=n {
        qc.h(q);
    }
    for q in 1..=n {
        // Controlled-P(2πθ·2^{n-q}): matched to the inverse-QFT convention
        // below so the counting register ends in |round(θ·2ⁿ)⟩.
        let angle = 2.0 * PI * theta * (1u64 << (n - q)) as f64;
        qc.cp(angle, q, 0);
    }
    // Inverse QFT on the counting register (shifted by one qubit).
    for i in 1..=n {
        for j in (1..i).rev() {
            let k = i - j;
            qc.cp(-PI / (1u64 << k) as f64, j, i);
        }
        qc.h(i);
    }
    qc
}


/// The Deutsch–Jozsa oracle flavours.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum DjOracle {
    /// `f(x) = c` for all inputs.
    Constant(bool),
    /// `f(x) = parity(x & mask)` with a non-zero mask — a balanced function.
    Balanced(u64),
}

/// Deutsch–Jozsa on `n` data qubits: one query decides whether the oracle
/// is constant or balanced. Qubit 0 is the phase ancilla; data qubits are
/// `1..=n`. Measuring the data register all-zero ⇔ constant.
///
/// # Panics
///
/// Panics if `n == 0`, or for a balanced oracle whose mask is zero or out
/// of range.
pub fn deutsch_jozsa(n: usize, oracle: DjOracle) -> QuantumCircuit {
    assert!(n > 0, "need at least one data qubit");
    if let DjOracle::Balanced(mask) = oracle {
        assert!(mask != 0, "zero mask is a constant function");
        assert!(mask < (1u64 << n), "mask out of range");
    }
    let mut qc = QuantumCircuit::with_name(n + 1, format!("dj_{n}"));
    qc.x(0);
    for q in 0..=n {
        qc.h(q);
    }
    match oracle {
        DjOracle::Constant(false) => {}
        DjOracle::Constant(true) => {
            qc.x(0);
        }
        DjOracle::Balanced(mask) => {
            for b in 0..n {
                if (mask >> b) & 1 == 1 {
                    qc.cx(b + 1, 0);
                }
            }
        }
    }
    for q in 1..=n {
        qc.h(q);
    }
    qc
}

/// The three-qubit bit-flip code, end to end: encode `RY(θ)|0⟩` into
/// qubits 0–2, optionally inject an X error, extract the syndrome into two
/// ancillas (qubits 3–4), measure it into a 2-bit register `s`, and apply
/// the classically-controlled correction — a complete exercise of the
/// paper tool's special operations (measurement dialogs + conditioned
/// gates) with a verifiable outcome.
///
/// Syndrome decoding (`s = s₁s₀` with `s₀ = q0⊕q1`, `s₁ = q0⊕q2`):
/// `s == 3` → flip q0, `s == 1` → flip q1, `s == 2` → flip q2.
///
/// # Panics
///
/// Panics if `error_on` names a qubit outside `0..3`.
pub fn bit_flip_code(theta: f64, error_on: Option<usize>) -> QuantumCircuit {
    if let Some(q) = error_on {
        assert!(q < 3, "the code protects qubits 0..3");
    }
    let mut qc = QuantumCircuit::with_name(5, "bit_flip_code");
    let s = qc.add_creg("s", 2);
    // Encode: |ψ⟩ ⊗ |00⟩ → α|000⟩ + β|111⟩.
    qc.ry(theta, 0);
    qc.cx(0, 1).cx(0, 2);
    qc.barrier();
    // Error channel.
    if let Some(q) = error_on {
        qc.x(q);
    }
    qc.barrier();
    // Syndrome extraction: ancilla 3 = q0⊕q1, ancilla 4 = q0⊕q2.
    qc.cx(0, 3).cx(1, 3);
    qc.cx(0, 4).cx(2, 4);
    qc.measure(3, 0).measure(4, 1);
    // Correction, conditioned on the whole syndrome register.
    let x = crate::StandardGate::X;
    qc.gate_if(x, vec![], 0, crate::Condition { creg: s, value: 3 });
    qc.gate_if(x, vec![], 1, crate::Condition { creg: s, value: 1 });
    qc.gate_if(x, vec![], 2, crate::Condition { creg: s, value: 2 });
    qc
}

/// A reproducible random circuit: `depth` layers of uniformly chosen
/// single-qubit gates (`H S T RX RY RZ`) followed by a random CNOT per
/// layer.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_circuit(n: usize, depth: usize, seed: u64) -> QuantumCircuit {
    assert!(n >= 2, "random circuit needs at least 2 qubits");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut qc = QuantumCircuit::with_name(n, format!("random_{n}x{depth}"));
    for _ in 0..depth {
        for q in 0..n {
            match rng.gen_range(0..6) {
                0 => qc.h(q),
                1 => qc.s(q),
                2 => qc.t(q),
                3 => qc.rx(rng.gen_range(0.0..2.0 * PI), q),
                4 => qc.ry(rng.gen_range(0.0..2.0 * PI), q),
                _ => qc.rz(rng.gen_range(0.0..2.0 * PI), q),
            };
        }
        let c = rng.gen_range(0..n);
        let mut t = rng.gen_range(0..n);
        while t == c {
            t = rng.gen_range(0..n);
        }
        qc.cx(c, t);
    }
    qc
}

/// A reproducible random Clifford+T circuit: `depth` layers of uniformly
/// chosen gates from `{H, S, S†, T, T†, X, Z}` followed by a random CNOT per
/// layer. Unlike [`random_circuit`] the gate set is discrete, so deep
/// circuits repeat the same (gate, target) pairs many times — the workload
/// that operation and gate-DD caches are built for.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_clifford_t(n: usize, depth: usize, seed: u64) -> QuantumCircuit {
    assert!(n >= 2, "random circuit needs at least 2 qubits");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut qc = QuantumCircuit::with_name(n, format!("clifford_t_{n}x{depth}"));
    for _ in 0..depth {
        for q in 0..n {
            match rng.gen_range(0..7) {
                0 => qc.h(q),
                1 => qc.s(q),
                2 => qc.sdg(q),
                3 => qc.t(q),
                4 => qc.tdg(q),
                5 => qc.x(q),
                _ => qc.z(q),
            };
        }
        let c = rng.gen_range(0..n);
        let mut t = rng.gen_range(0..n);
        while t == c {
            t = rng.gen_range(0..n);
        }
        qc.cx(c, t);
    }
    qc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Operation;

    #[test]
    fn bell_matches_fig_1c() {
        let qc = bell();
        assert_eq!(qc.num_qubits(), 2);
        assert_eq!(qc.gate_count(), 2);
    }

    #[test]
    fn ghz_structure() {
        let qc = ghz(5);
        assert_eq!(qc.gate_count(), 5);
        assert_eq!(qc.depth(), 5);
    }

    #[test]
    fn qft3_gate_inventory_matches_fig_5a() {
        let qc = qft(3, true);
        // 3 H + 3 controlled phases + 1 swap = 7 operations.
        assert_eq!(qc.len(), 7);
        let swaps = qc
            .ops()
            .iter()
            .filter(|op| matches!(op, Operation::Swap { .. }))
            .count();
        assert_eq!(swaps, 1);
    }

    #[test]
    fn qft_without_swaps() {
        let qc = qft(4, false);
        assert!(qc
            .ops()
            .iter()
            .all(|op| !matches!(op, Operation::Swap { .. })));
        // n H gates + n(n-1)/2 controlled phases.
        assert_eq!(qc.gate_count(), 4 + 6);
    }

    #[test]
    fn iqft_inverts_qft_structurally() {
        let f = qft(3, true);
        let b = iqft(3, true);
        assert_eq!(f.len(), b.len());
    }

    #[test]
    fn grover_iteration_count() {
        let qc = grover(3, 5);
        // floor(pi/4 * sqrt(8)) = 2 iterations.
        assert!(qc.name().contains("grover"));
        let mcz_count = qc
            .ops()
            .iter()
            .filter(|op| match op {
                Operation::Gate(g) => {
                    g.gate == crate::StandardGate::Z && g.controls.len() == 2
                }
                _ => false,
            })
            .count();
        assert_eq!(mcz_count, 4, "two per iteration (oracle + diffusion)");
    }

    #[test]
    fn bv_uses_one_cx_per_secret_bit() {
        let qc = bernstein_vazirani(4, 0b1011);
        let cx = qc
            .ops()
            .iter()
            .filter(|op| match op {
                Operation::Gate(g) => {
                    g.gate == crate::StandardGate::X && g.controls.len() == 1
                }
                _ => false,
            })
            .count();
        assert_eq!(cx, 3);
    }

    #[test]
    fn teleportation_has_measures_and_conditions() {
        let qc = teleportation(0.7);
        let measures = qc
            .ops()
            .iter()
            .filter(|op| matches!(op, Operation::Measure { .. }))
            .count();
        assert_eq!(measures, 2);
        let conditioned = qc
            .ops()
            .iter()
            .filter(|op| match op {
                Operation::Gate(g) => g.condition.is_some(),
                _ => false,
            })
            .count();
        assert_eq!(conditioned, 2);
        assert_eq!(qc.num_clbits(), 2);
    }

    #[test]
    fn adder_width() {
        let qc = cuccaro_adder(3);
        assert_eq!(qc.num_qubits(), 8);
        assert!(qc.gate_count() > 0);
    }

    #[test]
    fn random_clifford_t_is_reproducible_and_discrete() {
        let a = random_clifford_t(4, 10, 7);
        let b = random_clifford_t(4, 10, 7);
        assert_eq!(a.ops(), b.ops());
        // One CNOT plus n single-qubit gates per layer.
        assert_eq!(a.len(), 10 * 5);
    }

    #[test]
    fn random_circuit_is_reproducible() {
        let a = random_circuit(4, 10, 99);
        let b = random_circuit(4, 10, 99);
        assert_eq!(a, b);
        let c = random_circuit(4, 10, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn qpe_width_and_structure() {
        let qc = phase_estimation(3, 0.125);
        assert_eq!(qc.num_qubits(), 4);
        assert!(qc.gate_count() > 6);
    }
}

#[cfg(test)]
mod extended_library_tests {
    use super::*;

    #[test]
    fn dj_oracle_validation() {
        assert!(std::panic::catch_unwind(|| deutsch_jozsa(3, DjOracle::Balanced(0))).is_err());
        assert!(std::panic::catch_unwind(|| deutsch_jozsa(3, DjOracle::Balanced(8))).is_err());
        let qc = deutsch_jozsa(3, DjOracle::Balanced(0b101));
        assert_eq!(qc.num_qubits(), 4);
    }

    #[test]
    fn dj_constant_uses_no_entangling_gates() {
        let qc = deutsch_jozsa(4, DjOracle::Constant(true));
        let cx = qc
            .ops()
            .iter()
            .filter(|op| matches!(op, crate::Operation::Gate(g) if !g.controls.is_empty()))
            .count();
        assert_eq!(cx, 0);
    }

    #[test]
    fn bit_flip_code_structure() {
        let qc = bit_flip_code(0.8, Some(1));
        assert_eq!(qc.num_qubits(), 5);
        assert_eq!(qc.num_clbits(), 2);
        let conditioned = qc
            .ops()
            .iter()
            .filter(|op| matches!(op, crate::Operation::Gate(g) if g.condition.is_some()))
            .count();
        assert_eq!(conditioned, 3);
    }

    #[test]
    #[should_panic(expected = "protects qubits")]
    fn bit_flip_code_rejects_ancilla_error() {
        bit_flip_code(0.5, Some(3));
    }
}
