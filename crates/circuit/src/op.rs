//! Circuit operations.

use crate::gate::StandardGate;
use qdd_core::Control;
use std::fmt;

/// A classical condition `creg == value` guarding an operation
/// (OpenQASM 2's `if (c == k) …`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Condition {
    /// Index of the classical register in the owning circuit.
    pub creg: usize,
    /// The value the register must hold for the operation to fire.
    pub value: u64,
}

/// A (controlled) single-qubit gate application.
#[derive(Clone, Debug, PartialEq)]
pub struct GateApplication {
    /// The local gate.
    pub gate: StandardGate,
    /// Control qubits (any polarity); empty for uncontrolled gates.
    pub controls: Vec<Control>,
    /// The target qubit.
    pub target: usize,
    /// Optional classical condition.
    pub condition: Option<Condition>,
}

impl GateApplication {
    /// An unconditioned gate application.
    pub fn new(gate: StandardGate, controls: Vec<Control>, target: usize) -> Self {
        GateApplication {
            gate,
            controls,
            target,
            condition: None,
        }
    }
}

/// One step of a quantum circuit.
///
/// The paper distinguishes *unitary* operations from *special* operations
/// (barrier, measurement, reset, classically-controlled gates) which the
/// tool treats as breakpoints (§IV-B); [`Operation::is_special`] encodes
/// exactly that classification.
#[derive(Clone, Debug, PartialEq)]
pub enum Operation {
    /// A (multi-controlled, possibly classically conditioned) gate.
    Gate(GateApplication),
    /// A (controlled) SWAP of two qubits.
    Swap {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
        /// Controls (Fredkin when non-empty).
        controls: Vec<Control>,
    },
    /// A breakpoint; no effect on the state.
    Barrier,
    /// Projective measurement of `qubit` into classical `bit`.
    Measure {
        /// The measured qubit.
        qubit: usize,
        /// Global classical bit receiving the outcome.
        bit: usize,
    },
    /// Discards `qubit` and re-initializes it to `|0⟩`.
    Reset {
        /// The reset qubit.
        qubit: usize,
    },
}

impl Operation {
    /// `true` for operations that do not correspond to a unitary matrix
    /// (measurement, reset) or that act as explicit breakpoints (barrier)
    /// or fire conditionally on classical bits — the tool's "special
    /// operations".
    pub fn is_special(&self) -> bool {
        match self {
            Operation::Gate(g) => g.condition.is_some(),
            Operation::Swap { .. } => false,
            Operation::Barrier | Operation::Measure { .. } | Operation::Reset { .. } => true,
        }
    }

    /// `true` if the operation is a plain unitary (appliable as a matrix).
    pub fn is_unitary(&self) -> bool {
        matches!(
            self,
            Operation::Gate(GateApplication { condition: None, .. }) | Operation::Swap { .. }
        )
    }

    /// All qubits the operation touches (targets then controls).
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Operation::Gate(g) => {
                let mut q = vec![g.target];
                q.extend(g.controls.iter().map(|c| c.qubit));
                q
            }
            Operation::Swap { a, b, controls } => {
                let mut q = vec![*a, *b];
                q.extend(controls.iter().map(|c| c.qubit));
                q
            }
            Operation::Barrier => Vec::new(),
            Operation::Measure { qubit, .. } | Operation::Reset { qubit } => vec![*qubit],
        }
    }

    /// Expands the operation into elementary controlled-single-qubit gates
    /// (SWAP → 3 CNOTs; everything else passes through).
    ///
    /// Returns `None` for non-unitary operations.
    pub fn to_gate_sequence(&self) -> Option<Vec<GateApplication>> {
        match self {
            Operation::Gate(g) if g.condition.is_none() => Some(vec![g.clone()]),
            Operation::Swap { a, b, controls } => {
                // SWAP(a,b) = CX(a→b) · CX(b→a) · CX(a→b); a controlled swap
                // (Fredkin) only needs the middle CX controlled.
                let outer = |ctrl: usize, tgt: usize| {
                    GateApplication::new(StandardGate::X, vec![Control::pos(ctrl)], tgt)
                };
                let mut mid_controls = vec![Control::pos(*b)];
                mid_controls.extend(controls.iter().copied());
                Some(vec![
                    outer(*a, *b),
                    GateApplication::new(StandardGate::X, mid_controls, *a),
                    outer(*a, *b),
                ])
            }
            _ => None,
        }
    }

    /// The inverse operation, if the operation is unitary.
    pub fn inverse(&self) -> Option<Operation> {
        match self {
            Operation::Gate(g) if g.condition.is_none() => Some(Operation::Gate(GateApplication {
                gate: g.gate.inverse(),
                controls: g.controls.clone(),
                target: g.target,
                condition: None,
            })),
            Operation::Swap { a, b, controls } => Some(Operation::Swap {
                a: *a,
                b: *b,
                controls: controls.clone(),
            }),
            Operation::Barrier => Some(Operation::Barrier),
            _ => None,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Gate(g) => {
                if let Some(c) = g.condition {
                    write!(f, "if(c{}=={}) ", c.creg, c.value)?;
                }
                write!(f, "{}", g.gate)?;
                for c in &g.controls {
                    let sign = match c.polarity {
                        qdd_core::Polarity::Positive => "",
                        qdd_core::Polarity::Negative => "!",
                    };
                    write!(f, " {sign}c:q{}", c.qubit)?;
                }
                write!(f, " q{}", g.target)
            }
            Operation::Swap { a, b, controls } => {
                write!(f, "swap q{a} q{b}")?;
                for c in controls {
                    write!(f, " c:q{}", c.qubit)?;
                }
                Ok(())
            }
            Operation::Barrier => write!(f, "barrier"),
            Operation::Measure { qubit, bit } => write!(f, "measure q{qubit} -> c[{bit}]"),
            Operation::Reset { qubit } => write!(f, "reset q{qubit}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn special_classification_follows_paper() {
        assert!(Operation::Barrier.is_special());
        assert!(Operation::Measure { qubit: 0, bit: 0 }.is_special());
        assert!(Operation::Reset { qubit: 1 }.is_special());
        let plain = Operation::Gate(GateApplication::new(StandardGate::H, vec![], 0));
        assert!(!plain.is_special());
        assert!(plain.is_unitary());
        let mut cond = GateApplication::new(StandardGate::X, vec![], 0);
        cond.condition = Some(Condition { creg: 0, value: 1 });
        assert!(Operation::Gate(cond).is_special());
    }

    #[test]
    fn swap_expands_to_three_cnots() {
        let sw = Operation::Swap {
            a: 0,
            b: 2,
            controls: vec![],
        };
        let seq = sw.to_gate_sequence().unwrap();
        assert_eq!(seq.len(), 3);
        assert!(seq.iter().all(|g| g.gate == StandardGate::X));
        assert_eq!(seq[0].target, 2);
        assert_eq!(seq[1].target, 0);
        assert_eq!(seq[2].target, 2);
    }

    #[test]
    fn fredkin_controls_only_middle_cnot() {
        let sw = Operation::Swap {
            a: 0,
            b: 1,
            controls: vec![Control::pos(2)],
        };
        let seq = sw.to_gate_sequence().unwrap();
        assert_eq!(seq[0].controls.len(), 1);
        assert_eq!(seq[1].controls.len(), 2);
        assert_eq!(seq[2].controls.len(), 1);
    }

    #[test]
    fn inverse_of_measure_is_none() {
        assert!(Operation::Measure { qubit: 0, bit: 0 }.inverse().is_none());
        assert!(Operation::Reset { qubit: 0 }.inverse().is_none());
        let g = Operation::Gate(GateApplication::new(StandardGate::S, vec![], 1));
        let inv = g.inverse().unwrap();
        match inv {
            Operation::Gate(g) => assert_eq!(g.gate, StandardGate::Sdg),
            _ => panic!("expected gate"),
        }
    }

    #[test]
    fn qubit_listing() {
        let g = Operation::Gate(GateApplication::new(
            StandardGate::X,
            vec![Control::pos(2), Control::neg(3)],
            1,
        ));
        assert_eq!(g.qubits(), vec![1, 2, 3]);
    }

    #[test]
    fn display_formats() {
        let g = Operation::Gate(GateApplication::new(
            StandardGate::X,
            vec![Control::pos(1)],
            0,
        ));
        assert_eq!(g.to_string(), "x c:q1 q0");
        assert_eq!(
            Operation::Measure { qubit: 2, bit: 0 }.to_string(),
            "measure q2 -> c[0]"
        );
    }
}
