//! Error type for circuit construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors from circuit parsing and fallible circuit transformations.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A syntax or semantic error while parsing a circuit file.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A qubit index outside the circuit's register.
    QubitOutOfRange {
        /// The rejected index.
        qubit: usize,
        /// The circuit width.
        num_qubits: usize,
    },
    /// A classical bit index outside the declared registers.
    BitOutOfRange {
        /// The rejected index.
        bit: usize,
        /// The number of classical bits.
        num_bits: usize,
    },
    /// Inversion requested for a circuit containing non-unitary operations.
    NotInvertible {
        /// Index of the first non-invertible operation.
        op_index: usize,
    },
}

impl CircuitError {
    /// Convenience constructor for parse errors.
    pub fn parse(line: usize, message: impl Into<String>) -> Self {
        CircuitError::Parse {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit {qubit} out of range for {num_qubits}-qubit circuit")
            }
            CircuitError::BitOutOfRange { bit, num_bits } => {
                write!(f, "classical bit {bit} out of range for {num_bits} bits")
            }
            CircuitError::NotInvertible { op_index } => {
                write!(f, "circuit is not invertible: operation {op_index} is non-unitary")
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            CircuitError::parse(3, "unexpected token").to_string(),
            "parse error at line 3: unexpected token"
        );
        assert!(CircuitError::NotInvertible { op_index: 4 }
            .to_string()
            .contains("operation 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<CircuitError>();
    }
}
