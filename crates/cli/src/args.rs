//! Minimal flag parser shared by the subcommands.

use std::collections::HashMap;

/// Parsed positional arguments and `--flag [value]` options.
pub struct Args {
    pub positional: Vec<String>,
    flags: HashMap<String, Option<String>>,
}

/// Flags that take a value (everything else is boolean).
const VALUE_FLAGS: &[&str] = &[
    "--seed", "--shots", "--threads", "--style", "--svg", "--dot", "--html",
    "--strategy", "--stimuli", "-o", "--threshold", "--node-limit",
    "--timeout-ms", "--metrics-out", "--trace-out", "--min-fidelity",
    "--approx-policy", "--record-timeline", "--snapshot-stride",
    "--histogram-out", "--port", "--host", "--cache-capacity",
    "--quota-shots", "--quota-body-bytes", "--quota-sessions",
    "--quota-nodes", "--quota-complex", "--quota-deadline-ms",
];

impl Args {
    /// Splits `argv` into positionals and flags.
    ///
    /// # Errors
    ///
    /// Reports unknown flags and missing flag values.
    pub fn parse(argv: &[String], known_flags: &[&str]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if token.starts_with('-') && token != "-" {
                if !known_flags.contains(&token.as_str()) {
                    return Err(format!("unknown option `{token}`"));
                }
                if VALUE_FLAGS.contains(&token.as_str()) {
                    let value = argv.get(i + 1).ok_or_else(|| {
                        format!("option `{token}` needs a value")
                    })?;
                    flags.insert(token.clone(), Some(value.clone()));
                    i += 2;
                } else {
                    flags.insert(token.clone(), None);
                    i += 1;
                }
            } else {
                positional.push(token.clone());
                i += 1;
            }
        }
        Ok(Args { positional, flags })
    }

    /// `true` if the boolean flag was given.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// The value of a value-flag, if present.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).and_then(|v| v.as_deref())
    }

    /// A parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Reports unparsable numbers.
    pub fn number<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.value(flag) {
            None => Ok(default),
            Some(text) => text
                .parse()
                .map_err(|_| format!("option `{flag}`: cannot parse `{text}`")),
        }
    }
}

/// Builds package [`Limits`](qdd_core::Limits) from the shared
/// `--node-limit` / `--timeout-ms` flags.
///
/// # Errors
///
/// Reports unparsable or zero values.
pub fn parse_limits(args: &Args) -> Result<qdd_core::Limits, String> {
    let mut limits = qdd_core::Limits::default();
    if let Some(text) = args.value("--node-limit") {
        let n: usize = text
            .parse()
            .map_err(|_| format!("option `--node-limit`: cannot parse `{text}`"))?;
        if n == 0 {
            return Err("option `--node-limit`: must be at least 1".to_string());
        }
        limits.max_nodes = Some(n);
    }
    if let Some(text) = args.value("--timeout-ms") {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("option `--timeout-ms`: cannot parse `{text}`"))?;
        limits.deadline = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(text) = args.value("--min-fidelity") {
        let f: f64 = text
            .parse()
            .map_err(|_| format!("option `--min-fidelity`: cannot parse `{text}`"))?;
        if !(f > 0.0 && f <= 1.0) {
            return Err(format!(
                "option `--min-fidelity`: `{text}` is not in (0, 1]"
            ));
        }
        limits.min_fidelity = Some(f);
    }
    if let Some(text) = args.value("--approx-policy") {
        if args.value("--min-fidelity").is_none() {
            return Err(
                "option `--approx-policy` requires `--min-fidelity` \
                 (without a fidelity floor the approximation rung never fires)"
                    .to_string(),
            );
        }
        limits.approx_policy = parse_approx_policy(text)?;
    }
    Ok(limits)
}

/// Resolves an `--approx-policy` spec: `budget` (the default) or
/// `threshold:EPS` with the edge-contribution cutoff.
fn parse_approx_policy(text: &str) -> Result<qdd_core::ApproxPolicy, String> {
    if text == "budget" {
        return Ok(qdd_core::ApproxPolicy::FidelityBudget);
    }
    if let Some(eps_text) = text.strip_prefix("threshold:") {
        let epsilon: f64 = eps_text.parse().map_err(|_| {
            format!("option `--approx-policy`: cannot parse epsilon `{eps_text}`")
        })?;
        if !(epsilon > 0.0 && epsilon < 0.5) {
            return Err(format!(
                "option `--approx-policy`: epsilon `{eps_text}` is not in (0, 0.5)"
            ));
        }
        return Ok(qdd_core::ApproxPolicy::Threshold { epsilon });
    }
    Err(format!(
        "unknown approx policy `{text}` (expected budget or threshold:EPS)"
    ))
}

/// Resolves a `--style` name.
pub fn parse_style(name: Option<&str>) -> Result<qdd_viz::VizStyle, String> {
    match name.unwrap_or("classic") {
        "classic" => Ok(qdd_viz::VizStyle::classic()),
        "colored" => Ok(qdd_viz::VizStyle::colored()),
        "modern" => Ok(qdd_viz::VizStyle::modern()),
        other => Err(format!(
            "unknown style `{other}` (expected classic, colored, or modern)"
        )),
    }
}

/// Resolves a `--strategy` name.
pub fn parse_strategy(name: Option<&str>) -> Result<qdd_verify::Strategy, String> {
    use qdd_verify::Strategy;
    match name.unwrap_or("proportional") {
        "construction" => Ok(Strategy::Construction),
        "one-to-one" => Ok(Strategy::OneToOne),
        "proportional" => Ok(Strategy::Proportional),
        "barrier-guided" => Ok(Strategy::BarrierGuided),
        "lookahead" => Ok(Strategy::Lookahead),
        other => Err(format!(
            "unknown strategy `{other}` (expected construction, one-to-one, \
             proportional, barrier-guided, or lookahead)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_and_flags_split() {
        let a = Args::parse(
            &argv(&["file.qasm", "--seed", "7", "--state"]),
            &["--seed", "--state"],
        )
        .unwrap();
        assert_eq!(a.positional, vec!["file.qasm"]);
        assert_eq!(a.value("--seed"), Some("7"));
        assert!(a.has("--state"));
        assert_eq!(a.number("--seed", 0u64).unwrap(), 7);
        assert_eq!(a.number("--shots", 42u64).unwrap(), 42);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(Args::parse(&argv(&["--bogus"]), &["--seed"]).is_err());
    }

    #[test]
    fn missing_value_rejected() {
        assert!(Args::parse(&argv(&["--seed"]), &["--seed"]).is_err());
    }

    #[test]
    fn min_fidelity_and_policy_parse_and_validate() {
        let flags: &[&str] = &["--min-fidelity", "--approx-policy"];
        let ok = Args::parse(&argv(&["--min-fidelity", "0.9"]), flags).unwrap();
        let limits = parse_limits(&ok).unwrap();
        assert_eq!(limits.min_fidelity, Some(0.9));
        assert_eq!(limits.approx_policy, qdd_core::ApproxPolicy::FidelityBudget);

        let both = Args::parse(
            &argv(&["--min-fidelity", "0.8", "--approx-policy", "threshold:0.01"]),
            flags,
        )
        .unwrap();
        assert_eq!(
            parse_limits(&both).unwrap().approx_policy,
            qdd_core::ApproxPolicy::Threshold { epsilon: 0.01 }
        );

        for bad in [
            vec!["--min-fidelity", "0"],
            vec!["--min-fidelity", "1.5"],
            vec!["--min-fidelity", "nope"],
            vec!["--approx-policy", "budget"], // needs --min-fidelity
            vec!["--min-fidelity", "0.9", "--approx-policy", "threshold:0.7"],
            vec!["--min-fidelity", "0.9", "--approx-policy", "frobnicate"],
        ] {
            let parsed = Args::parse(&argv(&bad), flags).unwrap();
            assert!(parse_limits(&parsed).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn style_and_strategy_names() {
        assert!(parse_style(Some("colored")).is_ok());
        assert!(parse_style(Some("neon")).is_err());
        assert!(parse_strategy(None).is_ok());
        assert!(parse_strategy(Some("lookahead")).is_ok());
        assert!(parse_strategy(Some("psychic")).is_err());
    }
}
