//! `qdd` — the paper's decision-diagram tool as a command-line interface.
//!
//! ```text
//! qdd simulate <file.{qasm,real}> [--seed N] [--shots N] [--state]
//!              [--svg PATH] [--dot PATH] [--html PATH] [--style STYLE]
//! qdd verify   <left> <right> [--strategy STRATEGY] [--stimuli N]
//! qdd render   <file> [--matrix] [--style STYLE] -o OUT.{svg,dot,json,html}
//! qdd circuit  <file> [--optimize]
//! qdd inspect  <timeline.jsonl> [-o OUT.html] [--style STYLE]
//! qdd serve    [--port N] [--quota-* ...]
//! ```
//!
//! Argument parsing is hand-rolled (the surface is five subcommands and a
//! dozen flags; a parser dependency isn't warranted — see DESIGN.md).

mod args;
mod commands;
mod load;
mod telemetry;

use std::process::ExitCode;

const USAGE: &str = "\
qdd — decision diagrams for quantum computing

USAGE:
  qdd simulate <file.{qasm,real}> [options]   run a circuit on decision diagrams
  qdd verify   <left> <right> [options]       check two circuits for equivalence
  qdd render   <file> [options]               export a diagram (svg/dot/json/html)
  qdd circuit  <file> [--optimize]            show the circuit as ASCII art + stats
  qdd inspect  <timeline.jsonl> [options]     render a recorded timeline as HTML
  qdd serve    [options]                      run the engine as an HTTP daemon
  qdd help [command]                          this message / command details

Run `qdd help <command>` for per-command options.";

/// Exit code for resource exhaustion (node budget or deadline), distinct
/// from 1 (bad input / failure) so scripts can retry with a larger budget.
/// Successful-but-approximated runs exit with
/// [`commands::simulate::EXIT_APPROXIMATE`] (4).
const EXIT_RESOURCE: u8 = 3;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &argv[1..];
    let result: Result<u8, commands::CmdError> = match command.as_str() {
        "simulate" => commands::simulate::run(rest),
        "verify" => commands::verify::run(rest).map(|()| 0),
        "render" => commands::render::run(rest).map(|()| 0).map_err(Into::into),
        "circuit" => commands::circuit::run(rest).map(|()| 0).map_err(Into::into),
        "inspect" => commands::inspect::run(rest).map(|()| 0).map_err(Into::into),
        "serve" => commands::serve::run(rest).map(|()| 0),
        "help" | "--help" | "-h" => {
            match rest.first().map(String::as_str) {
                Some("simulate") => println!("{}", commands::simulate::HELP),
                Some("verify") => println!("{}", commands::verify::HELP),
                Some("render") => println!("{}", commands::render::HELP),
                Some("circuit") => println!("{}", commands::circuit::HELP),
                Some("inspect") => println!("{}", commands::inspect::HELP),
                Some("serve") => println!("{}", commands::serve::HELP),
                _ => println!("{USAGE}"),
            }
            Ok(0)
        }
        other => Err(commands::CmdError::Input(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    };
    match result {
        Ok(code) => ExitCode::from(code),
        Err(commands::CmdError::Input(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
        Err(commands::CmdError::Resource(message)) => {
            eprintln!("error: {message}");
            ExitCode::from(EXIT_RESOURCE)
        }
    }
}
