//! Circuit loading by file extension — the tool's drag-and-drop accepts
//! `.qasm` and `.real` (paper §IV-B); so do we.

use qdd_circuit::QuantumCircuit;
use std::path::Path;

/// Loads a circuit from a `.qasm` or `.real` file.
///
/// # Errors
///
/// Reports I/O failures, unknown extensions, and parse errors with their
/// source line.
pub fn load_circuit(path: &str) -> Result<QuantumCircuit, String> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let mut circuit = match ext {
        "qasm" => qdd_circuit::qasm::parse(&source).map_err(|e| format!("{path}: {e}"))?,
        "real" => qdd_circuit::real::parse(&source).map_err(|e| format!("{path}: {e}"))?,
        other => {
            return Err(format!(
                "`{path}`: unsupported extension `.{other}` (expected .qasm or .real)"
            ))
        }
    };
    let stem = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    circuit.set_name(stem);
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("qdd_cli_{}_{name}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn loads_qasm() {
        let p = write_temp("a.qasm", "OPENQASM 2.0; qreg q[2]; h q[1]; cx q[1],q[0];");
        let qc = load_circuit(p.to_str().unwrap()).unwrap();
        assert_eq!(qc.num_qubits(), 2);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn loads_real() {
        let p = write_temp("b.real", ".numvars 2\n.begin\nt2 x1 x2\n.end\n");
        let qc = load_circuit(p.to_str().unwrap()).unwrap();
        assert_eq!(qc.num_qubits(), 2);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_unknown_extension() {
        let p = write_temp("c.txt", "hello");
        assert!(load_circuit(p.to_str().unwrap())
            .unwrap_err()
            .contains("unsupported extension"));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn reports_missing_file() {
        assert!(load_circuit("/definitely/not/here.qasm")
            .unwrap_err()
            .contains("cannot read"));
    }
}
