//! `qdd render` — export the diagram of a circuit's final state or its
//! full functionality matrix.

use crate::args::{parse_style, Args};
use crate::load::load_circuit;
use std::path::Path;

pub const HELP: &str = "\
qdd render <file.{qasm,real}> -o OUT [options]

Builds the circuit's decision diagram and writes it in the format implied
by OUT's extension: .svg, .dot, .json, or .html (single-frame explorer).

OPTIONS:
  -o PATH        output file (required)
  --matrix       render the circuit's functionality (matrix DD) instead of
                 the state reached from |0…0⟩; requires a unitary circuit
  --style STYLE  classic | colored | modern   (default colored)";

const FLAGS: &[&str] = &["-o", "--matrix", "--style"];

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, FLAGS)?;
    let [path] = args.positional.as_slice() else {
        return Err(format!("expected exactly one circuit file\n\n{HELP}"));
    };
    let out_path = args
        .value("-o")
        .ok_or_else(|| format!("missing `-o OUT`\n\n{HELP}"))?;
    let style = parse_style(args.value("--style").or(Some("colored")))?;
    let circuit = load_circuit(path)?;
    let n = circuit.num_qubits();

    let mut dd = qdd_core::DdPackage::new();
    let (graph, nodes) = if args.has("--matrix") {
        let mut u = dd.identity(n).map_err(|e| e.to_string())?;
        for op in circuit.ops() {
            if matches!(op, qdd_circuit::Operation::Barrier) {
                continue;
            }
            let gates = op.to_gate_sequence().ok_or_else(|| {
                "functionality rendering needs a measurement-free circuit".to_string()
            })?;
            for g in gates {
                let m = dd
                    .gate_dd(g.gate.matrix(), &g.controls, g.target, n)
                    .map_err(|e| e.to_string())?;
                u = dd.mat_mat(m, u);
            }
        }
        (qdd_viz::DdGraph::from_matrix(&dd, u), dd.mat_node_count(u))
    } else {
        let mut sim = qdd_sim::DdSimulator::with_seed(circuit.clone(), 1);
        sim.run().map_err(|e| e.to_string())?;
        (
            qdd_viz::DdGraph::from_vector(sim.package(), sim.state()),
            sim.node_count(),
        )
    };
    println!("{}: diagram has {nodes} nodes", circuit.name());

    let ext = Path::new(out_path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let content = match ext {
        "svg" => qdd_viz::svg::graph_to_svg(&graph, &style),
        "dot" => qdd_viz::dot::graph_to_dot(&graph, &style),
        "json" => qdd_viz::json::graph_to_json(&graph),
        "html" => {
            let frame = qdd_viz::Frame {
                index: 0,
                title: format!("{} ({nodes} nodes)", circuit.name()),
                svg: qdd_viz::svg::graph_to_svg(&graph, &style),
                dot: qdd_viz::dot::graph_to_dot(&graph, &style),
                node_count: nodes,
            };
            qdd_viz::html::explorer_html(&format!("qdd — {}", circuit.name()), &[frame])
        }
        other => {
            return Err(format!(
                "unsupported output extension `.{other}` (expected svg, dot, json, or html)"
            ))
        }
    };
    std::fs::write(out_path, content).map_err(|e| format!("writing `{out_path}`: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}
