//! `qdd inspect` — turn a recorded timeline into a self-contained HTML
//! report.

use crate::args::{parse_style, Args};

pub const HELP: &str = "\
qdd inspect <timeline.jsonl> [options]

Renders a `qdd-timeline-v1` recording (produced by
`qdd simulate … --record-timeline OUT.jsonl [--snapshot-stride K]`) into a
single self-contained HTML file: live-node and per-level curves over op
index with GC/approximation/fallback markers, a flamegraph-style span
tree, and a steppable gallery of the embedded structural snapshots. The
report needs no network and no external assets — open it in any browser.

OPTIONS:
  -o PATH       output file (default: the input with a .html extension)
  --style STYLE classic | colored | modern  (default classic)";

const FLAGS: &[&str] = &["-o", "--style"];

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, FLAGS)?;
    let [path] = args.positional.as_slice() else {
        return Err(format!("expected exactly one timeline file\n\n{HELP}"));
    };
    let style = parse_style(args.value("--style"))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))?;
    let doc = qdd_viz::inspect::parse_timeline(&text).map_err(|e| format!("`{path}`: {e}"))?;
    let out = match args.value("-o") {
        Some(out) => std::path::PathBuf::from(out),
        None => std::path::Path::new(path).with_extension("html"),
    };
    qdd_viz::html::write_timeline_report(&out, &doc, &style)
        .map_err(|e| format!("writing `{}`: {e}", out.display()))?;
    println!(
        "wrote {}: {} ops, {} snapshots, {} spans{}",
        out.display(),
        doc.ops.len(),
        doc.snapshots.len(),
        doc.spans.len(),
        if doc.header.dropped_records > 0 {
            format!(" ({} records dropped during recording)", doc.header.dropped_records)
        } else {
            String::new()
        }
    );
    Ok(())
}
