//! `qdd circuit` — inspect a circuit file as ASCII art with statistics.

use crate::args::Args;
use crate::load::load_circuit;

pub const HELP: &str = "\
qdd circuit <file.{qasm,real}> [--optimize]

Prints the circuit as ASCII art (most significant qubit on top, like the
paper's figures) with operation statistics.

OPTIONS:
  --optimize   run the peephole optimizer first and report what it removed";

const FLAGS: &[&str] = &["--optimize"];

pub fn run(argv: &[String]) -> Result<(), String> {
    let args = Args::parse(argv, FLAGS)?;
    let [path] = args.positional.as_slice() else {
        return Err(format!("expected exactly one circuit file\n\n{HELP}"));
    };
    let mut circuit = load_circuit(path)?;
    if args.has("--optimize") {
        let (optimized, stats) = qdd_circuit::optimize::optimize(&circuit);
        println!(
            "optimizer: removed {} operations ({} cancelled, {} merged, {} identities) in {} passes",
            stats.total_removed(),
            stats.cancelled_gates,
            stats.merged_phases,
            stats.dropped_identities,
            stats.passes
        );
        circuit = optimized;
    }
    println!(
        "{}: {} qubits, {} operations ({} gates), depth {}",
        circuit.name(),
        circuit.num_qubits(),
        circuit.len(),
        circuit.gate_count(),
        circuit.depth()
    );
    print!("{}", qdd_viz::text::circuit_to_text(&circuit));
    Ok(())
}
