//! Subcommand implementations.

pub mod circuit;
pub mod inspect;
pub mod render;
pub mod serve;
pub mod simulate;
pub mod verify;

/// A subcommand failure, classified for the process exit code: bad input
/// and ordinary failures exit 1, resource exhaustion (budget or deadline,
/// [`qdd_core::DdError::is_resource`]) exits 3 so scripts can distinguish
/// "this circuit is wrong" from "this circuit is too big for the budget".
#[derive(Debug)]
pub enum CmdError {
    /// Bad input, I/O failure, non-equivalence — exit code 1.
    Input(String),
    /// A configured resource budget or deadline ran out — exit code 3.
    Resource(String),
}

impl From<String> for CmdError {
    fn from(message: String) -> Self {
        CmdError::Input(message)
    }
}

impl CmdError {
    /// Classifies a simulator error by its resource-ness.
    pub fn from_sim(e: &qdd_sim::SimError) -> Self {
        match e {
            qdd_sim::SimError::Dd(d) if d.is_resource() => CmdError::Resource(e.to_string()),
            _ => CmdError::Input(e.to_string()),
        }
    }

    /// Classifies a verification error by its resource-ness.
    pub fn from_verify(e: &qdd_verify::VerifyError) -> Self {
        match e {
            qdd_verify::VerifyError::Dd(d) if d.is_resource() => {
                CmdError::Resource(e.to_string())
            }
            _ => CmdError::Input(e.to_string()),
        }
    }
}
