//! Subcommand implementations.

pub mod circuit;
pub mod render;
pub mod simulate;
pub mod verify;
