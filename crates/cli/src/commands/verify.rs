//! `qdd verify` — equivalence checking of two circuit files.

use crate::args::{parse_limits, parse_strategy, Args};
use crate::commands::CmdError;
use crate::load::load_circuit;
use qdd_verify::{Equivalence, EquivalenceChecker};

pub const HELP: &str = "\
qdd verify <left.{qasm,real}> <right.{qasm,real}> [options]

Checks whether the two circuits realize the same unitary, using decision
diagrams (both must be measurement-free and act on the same number of
qubits, like the paper's tool).

OPTIONS:
  --strategy S     construction | one-to-one | proportional |
                   barrier-guided | lookahead   (default proportional)
  --threads N      worker threads for the construction strategy: with 2 or
                   more, both system matrices build concurrently on a shared
                   frozen base (default 1; 0 = one per CPU, capped at 2).
                   The verdict is independent of the thread count.
  --stimuli N      additionally run N random basis states through both
                   circuits and compare the outputs (default 0)
  --node-limit N   cap live DD nodes during the check
  --timeout-ms N   wall-clock budget for the check
  --no-identity-skip
                   disable identity-skip edges in matrix DDs (debug aid;
                   slower and larger, the verdict is identical)
  --profile        print a per-phase wall-time profile table on stderr
  --metrics-out P  write the telemetry metrics snapshot as JSON to P
  --trace-out P    write the telemetry event stream to P (Chrome
                   trace_event JSON for .json paths, JSONL otherwise)

EXIT STATUS: 0 when equivalent (incl. up to global phase), 1 otherwise,
3 when a resource budget (--node-limit, --timeout-ms) is exhausted.";

const FLAGS: &[&str] = &[
    "--strategy", "--threads", "--stimuli", "--node-limit", "--timeout-ms",
    "--profile", "--metrics-out", "--trace-out", "--no-identity-skip",
];

pub fn run(argv: &[String]) -> Result<(), CmdError> {
    let args = Args::parse(argv, FLAGS)?;
    let [left_path, right_path] = args.positional.as_slice() else {
        return Err(CmdError::Input(format!(
            "expected exactly two circuit files\n\n{HELP}"
        )));
    };
    // Enable recording before the circuits load so parse spans are captured.
    let telemetry_on = crate::telemetry::start(&args)?;
    let left = load_circuit(left_path)?;
    let right = load_circuit(right_path)?;
    let strategy = parse_strategy(args.value("--strategy"))?;
    let threads: usize = args.number("--threads", 1)?;
    let stimuli: usize = args.number("--stimuli", 0)?;
    let limits = parse_limits(&args)?;

    println!(
        "left:  {} ({} qubits, {} gates)",
        left.name(),
        left.num_qubits(),
        left.gate_count()
    );
    println!(
        "right: {} ({} qubits, {} gates)",
        right.name(),
        right.num_qubits(),
        right.gate_count()
    );

    let identity_skip = !args.has("--no-identity-skip");
    let mut checker = if limits.is_unlimited() && identity_skip {
        EquivalenceChecker::new()
    } else {
        EquivalenceChecker::with_config(qdd_core::PackageConfig {
            limits,
            identity_skip,
            ..qdd_core::PackageConfig::default()
        })
    };
    checker.set_threads(threads);
    let report = match checker.check(&left, &right, strategy) {
        Ok(report) => report,
        Err(e) => {
            // Still write the requested telemetry outputs: the trace of a
            // check that blew its budget is exactly what a post-mortem needs.
            checker.package().publish_telemetry();
            let _ = crate::telemetry::finish(&args, telemetry_on, None);
            return Err(CmdError::from_verify(&e));
        }
    };
    checker.package().publish_telemetry();
    println!("{report}");
    if let Some(cx) = report.counterexample {
        println!("counterexample: entry ({}, {}) deviates from the identity pattern", cx.row, cx.col);
    }

    if stimuli > 0 {
        let sim_report = qdd_verify::simulate_equivalence(&left, &right, stimuli, 1)
            .map_err(|e| e.to_string())?;
        println!(
            "stimuli: {} inputs run, min fidelity {:.9}{}",
            sim_report.stimuli_run,
            sim_report.min_fidelity,
            match sim_report.witness {
                Some(w) => format!(", mismatch on input |{w:b}⟩"),
                None => String::new(),
            }
        );
    }

    crate::telemetry::finish(&args, telemetry_on, None)?;
    match report.result {
        Equivalence::NotEquivalent => {
            Err(CmdError::Input("circuits are NOT equivalent".to_string()))
        }
        _ => Ok(()),
    }
}
