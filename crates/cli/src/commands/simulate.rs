//! `qdd simulate` — run a circuit, print the resulting state, sample it,
//! and optionally export the diagram.

use crate::args::{parse_limits, parse_style, Args};
use crate::commands::CmdError;
use crate::load::load_circuit;

pub const HELP: &str = "\
qdd simulate <file.{qasm,real}> [options]

Runs the circuit from |0…0⟩ on decision diagrams. Measurements and resets
use seeded randomness; classically-controlled gates consult the recorded
bits.

OPTIONS:
  --seed N          RNG seed for measurements/sampling (default 1)
  --shots N         draw N shots through the shot engine (default 0).
                    Purely unitary and terminal-measurement circuits run
                    once and sample the final diagram; circuits with
                    mid-circuit measurement, reset, or classical control
                    re-execute per shot. Measured circuits histogram the
                    classical register values, unmeasured ones basis states.
  --threads N       worker threads (default: one per CPU). Drives per-shot
                    re-execution and the dense-fallback gate kernel; results
                    and histograms are bit-identical for every thread count.
  --state           print the amplitude table of the final state
  --threshold P     hide amplitudes below probability P (default 1e-9)
  --node-limit N    cap live DD nodes; under pressure the run GCs, then
                    approximates (with --min-fidelity), then degrades to
                    dense simulation (≤ 24 qubits), then fails
  --timeout-ms N    wall-clock budget for the run
  --min-fidelity F  allow fidelity-bounded approximation under resource
                    pressure, keeping the state's fidelity to the exact
                    run at least F (in (0, 1]); runs that approximated
                    exit with code 4
  --approx-policy P approximation strategy: budget (default; prune the
                    cheapest subtrees within the fidelity budget) or
                    threshold:EPS (zero edges contributing < EPS).
                    Requires --min-fidelity
  --no-identity-skip
                    disable identity-skip edges in matrix DDs: every gate
                    materializes explicit identity nodes on idle qubits
                    (debug aid; slower and larger, results are identical)
  --stats           print the full engine statistics snapshot (per-table
                    hit rates, gate-DD cache, complex-table interning,
                    GC activity, peak nodes)
  --stats-json      print the same snapshot as one JSON object on stdout
  --profile         print a per-phase wall-time profile table on stderr
  --metrics-out P   write the telemetry metrics snapshot as JSON to P
  --trace-out P     write the telemetry event stream to P (Chrome
                    trace_event JSON for .json paths, JSONL otherwise)
  --record-timeline P
                    record a per-op execution timeline (live/peak nodes,
                    allocation and cache-hit deltas, GC/approximation/
                    fallback events) and write it to P as qdd-timeline-v1
                    JSONL; render it with `qdd inspect P`. Multi-threaded
                    shot runs merge worker timelines deterministically
  --snapshot-stride K
                    with --record-timeline: every K-th op embeds a full
                    structural snapshot of the diagram (0 = off, default)
  --histogram-out P with --shots: write the histogram to P as
                    qdd-histogram-v1 JSONL (a header line, then one sorted
                    {\"value\":V,\"count\":C} line per outcome) — the same
                    bytes `qdd serve`'s /v1/shots endpoint streams, so the
                    two paths can be diffed bit-for-bit
  --svg PATH        write the final diagram as SVG
  --dot PATH        write the final diagram as Graphviz DOT
  --html PATH       write a step-by-step HTML explorer of the whole run
  --style STYLE     classic | colored | modern  (default classic)

EXIT STATUS: 0 on success (exact result), 1 on bad input, 3 when a
resource budget (--node-limit, --timeout-ms) is exhausted, 4 when the run
completed but the result is approximate (--min-fidelity pruning fired).";

const FLAGS: &[&str] = &[
    "--seed", "--shots", "--threads", "--state", "--threshold", "--node-limit",
    "--timeout-ms", "--stats", "--stats-json", "--svg", "--dot", "--html",
    "--style", "--profile", "--metrics-out", "--trace-out", "--min-fidelity",
    "--approx-policy", "--no-identity-skip", "--record-timeline",
    "--snapshot-stride", "--histogram-out",
];

/// Exit code reported to `main` when the run finished but the state was
/// approximated under resource pressure.
pub const EXIT_APPROXIMATE: u8 = 4;

pub fn run(argv: &[String]) -> Result<u8, CmdError> {
    let args = Args::parse(argv, FLAGS)?;
    let [path] = args.positional.as_slice() else {
        return Err(CmdError::Input(format!(
            "expected exactly one circuit file\n\n{HELP}"
        )));
    };
    // Enable recording before the circuit loads so parse spans are captured.
    let telemetry_on = crate::telemetry::start(&args)?;
    let circuit = load_circuit(path)?;
    let workload = crate::telemetry::Workload {
        name: circuit.name().to_string(),
        qubits: circuit.num_qubits(),
        ops: circuit.len(),
    };
    let seed: u64 = args.number("--seed", 1)?;
    let shots: u64 = args.number("--shots", 0)?;
    let threads: usize = args.number("--threads", 0)?;
    let threshold: f64 = args.number("--threshold", 1e-9)?;
    let style = parse_style(args.value("--style"))?;
    let limits = parse_limits(&args)?;

    println!(
        "{}: {} qubits, {} operations, depth {}",
        circuit.name(),
        circuit.num_qubits(),
        circuit.len(),
        circuit.depth()
    );

    // The HTML explorer needs per-step frames; plain runs use the batch
    // simulator.
    if let Some(html_path) = args.value("--html") {
        let mut explorer = qdd_viz::SimulationExplorer::new(circuit.clone(), style);
        // Resolve dialogs with seeded randomness, like the batch simulator.
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
        loop {
            match explorer.step_forward().map_err(|e| e.to_string())? {
                qdd_sim::StepOutcome::AtEnd => break,
                qdd_sim::StepOutcome::NeedsChoice(p) => {
                    let outcome = qdd_core::MeasurementOutcome::from(
                        rand::Rng::gen::<f64>(&mut rng) < p.p1,
                    );
                    explorer.choose(outcome).map_err(|e| e.to_string())?;
                }
                qdd_sim::StepOutcome::Applied { .. } => {}
            }
        }
        qdd_viz::html::write_explorer(
            std::path::Path::new(html_path),
            &format!("qdd — {}", circuit.name()),
            explorer.frames(),
        )
        .map_err(|e| format!("writing `{html_path}`: {e}"))?;
        println!("wrote {} frames to {html_path}", explorer.frames().len());
    }

    let config = qdd_core::PackageConfig {
        limits,
        identity_skip: !args.has("--no-identity-skip"),
        ..qdd_core::PackageConfig::default()
    };
    let mut sim = qdd_sim::DdSimulator::with_config(circuit.clone(), seed, config);
    sim.set_threads(threads);
    if let Err(e) = sim.run() {
        // A blown deadline returns immediately without climbing the ladder
        // (time spent cannot be GC'd back), so the trail would be fiction.
        if !matches!(
            e,
            qdd_sim::SimError::Dd(qdd_core::DdError::DeadlineExceeded { .. })
        ) {
            print_degradation_trail(&sim, &circuit, &limits);
        }
        // Still write the requested telemetry outputs: the trace of a run
        // that hit its budget is exactly what a post-mortem needs.
        let _ = crate::telemetry::finish(&args, telemetry_on, Some(&workload));
        return Err(CmdError::from_sim(&e));
    }
    if sim.stats().is_approximate() {
        println!(
            "budget pressure: approximated in {} rounds, fidelity ≥ {:.6} \
             ({} nodes pruned)",
            sim.stats().approx_rounds,
            sim.stats().fidelity_lower_bound,
            sim.stats().approx_nodes_removed
        );
    }
    if sim.degraded_to_dense() {
        println!(
            "node limit hit: degraded to dense simulation after {} operations \
             ({} pressure GCs)",
            sim.stats().applied_ops,
            sim.stats().gc_pressure_runs
        );
    } else {
        println!(
            "final diagram: {} nodes (peak {} during the run)",
            sim.node_count(),
            sim.stats().peak_nodes
        );
    }
    if sim.stats().gc_pressure_runs > 0 && !sim.degraded_to_dense() {
        println!(
            "budget pressure: {} forced garbage collections",
            sim.stats().gc_pressure_runs
        );
    }
    if args.has("--stats") {
        let pkg = sim.package().stats();
        let ct = sim.package().complex_table_stats();
        println!("engine statistics:");
        println!(
            "  nodes: {} vector + {} matrix alive, peak live {}",
            pkg.vnodes_alive, pkg.mnodes_alive, pkg.peak_live_nodes
        );
        println!("  compute tables ({} lookups total):", pkg.cache_lookups);
        for t in sim.package().compute_table_stats() {
            if t.lookups == 0 {
                continue;
            }
            println!(
                "    {:<9} {:>10} lookups  {:>6.1}% hit  {} dropped",
                t.name,
                t.lookups,
                100.0 * t.hit_rate(),
                t.dropped
            );
        }
        let gate_rate = if pkg.gate_cache_lookups == 0 {
            0.0
        } else {
            100.0 * pkg.gate_cache_hits as f64 / pkg.gate_cache_lookups as f64
        };
        println!(
            "  gate-DD cache: {} lookups, {} hits ({gate_rate:.1}%)",
            pkg.gate_cache_lookups, pkg.gate_cache_hits
        );
        let complex_rate = if ct.lookups == 0 {
            0.0
        } else {
            100.0 * ct.hits as f64 / ct.lookups as f64
        };
        println!(
            "  complex table: {} interned values, {} lookups ({complex_rate:.1}% hit, \
             {} from the front cache), {} reclaimed by GC",
            ct.entries, ct.lookups, ct.front_hits, ct.reclaimed
        );
        println!(
            "  GC: {} runs ({} under pressure)",
            pkg.gc_runs, pkg.gc_pressure_runs
        );
        println!(
            "  telemetry: {} events dropped at the buffer cap",
            qdd_telemetry::merged_snapshot().dropped_events
        );
        if sim.stats().approx_rounds > 0 {
            println!(
                "  approximation: {} rounds, {} nodes pruned, \
                 fidelity lower bound {:.6}",
                sim.stats().approx_rounds,
                sim.stats().approx_nodes_removed,
                sim.stats().fidelity_lower_bound
            );
        }
        if pkg.compute_evictions > 0 || pkg.compute_clears > 0 {
            println!(
                "  pressure: {} entries dropped by collisions, {} table clears",
                pkg.compute_evictions, pkg.compute_clears
            );
        }
    }
    if args.has("--stats-json") {
        println!("{}", stats_json(&circuit, &sim));
    }
    if !sim.classical_bits().is_empty() {
        let bits: String = sim
            .classical_bits()
            .iter()
            .rev()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        println!("classical bits: {bits}");
    }

    if args.has("--state") {
        if sim.degraded_to_dense() {
            let n = circuit.num_qubits();
            for (basis, amp) in sim.dense_state().iter().enumerate() {
                if amp.norm_sqr() >= threshold {
                    println!("  |{basis:0n$b}⟩ : {:+.6}{:+.6}i", amp.re, amp.im);
                }
            }
        } else {
            print!(
                "{}",
                qdd_viz::text::state_table(
                    sim.package(),
                    sim.state(),
                    circuit.num_qubits(),
                    threshold
                )
            );
        }
    }

    // Exit code 4 signals "completed, but the result is approximate". The
    // shot path below can only tighten this with the workers' merged bound.
    let mut approximate = sim.stats().is_approximate();

    if shots > 0 {
        // Shots run through the shot engine, not by sampling the final
        // state of the run above: for circuits with mid-circuit
        // measurement, reset, or classical control, sampling one final
        // state is *wrong* — each shot must re-execute the circuit.
        let mut opts = qdd_sim::ShotOptions::new(shots, seed);
        opts.threads = threads;
        opts.config = config;
        let report = match qdd_sim::shots::run(&circuit, &opts) {
            Ok(r) => r,
            Err(e) => {
                let _ = crate::telemetry::finish(&args, telemetry_on, Some(&workload));
                return Err(CmdError::from_sim(&e));
            }
        };
        if report.is_approximate() {
            approximate = true;
            println!(
                "shots are approximate: per-shot fidelity ≥ {:.6}",
                report.fidelity_lower_bound
            );
        }
        if let Some(hist_path) = args.value("--histogram-out") {
            // Same header and line bytes as `qdd serve`'s /v1/shots stream,
            // so CLI and daemon histograms diff bit-for-bit.
            let kind = match report.kind {
                qdd_sim::HistogramKind::BasisStates => "basis_states",
                qdd_sim::HistogramKind::ClassicalBits => "classical_bits",
            };
            let mut out = format!(
                "{{\"schema\":\"qdd-histogram-v1\",\"kind\":\"{kind}\",\"shots\":{}}}\n",
                report.shots
            );
            for line in report.histogram_lines() {
                out.push_str(&line);
                out.push('\n');
            }
            std::fs::write(hist_path, out)
                .map_err(|e| format!("writing `{hist_path}`: {e}"))?;
            println!("wrote histogram to {hist_path}");
        }
        let mut entries: Vec<_> = report.histogram.into_iter().collect();
        entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        if report.threads_used > 1 {
            println!(
                "{shots} shots: {} regime, {} threads",
                report.regime, report.threads_used
            );
        } else {
            println!("{shots} shots: {} regime", report.regime);
        }
        let width = match report.kind {
            qdd_sim::HistogramKind::BasisStates => circuit.num_qubits(),
            qdd_sim::HistogramKind::ClassicalBits => circuit.num_clbits(),
        };
        for (value, count) in entries.iter().take(16) {
            match report.kind {
                qdd_sim::HistogramKind::BasisStates => {
                    println!("  |{value:0width$b}⟩ : {count}");
                }
                qdd_sim::HistogramKind::ClassicalBits => {
                    println!("  {value:0width$b} : {count}");
                }
            }
        }
        if entries.len() > 16 {
            println!("  … {} more outcomes", entries.len() - 16);
        }
    }

    if sim.degraded_to_dense() && (args.value("--svg").is_some() || args.value("--dot").is_some()) {
        println!("note: diagram exports show the last in-budget DD snapshot");
    }
    if let Some(svg_path) = args.value("--svg") {
        let svg = qdd_viz::svg::vector_to_svg(sim.package(), sim.state(), &style);
        std::fs::write(svg_path, svg).map_err(|e| format!("writing `{svg_path}`: {e}"))?;
        println!("wrote {svg_path}");
    }
    if let Some(dot_path) = args.value("--dot") {
        let dot = qdd_viz::dot::vector_to_dot(sim.package(), sim.state(), &style);
        std::fs::write(dot_path, dot).map_err(|e| format!("writing `{dot_path}`: {e}"))?;
        println!("wrote {dot_path}");
    }
    crate::telemetry::finish(&args, telemetry_on, Some(&workload))?;
    Ok(if approximate { EXIT_APPROXIMATE } else { 0 })
}

/// Reports which degradation rungs ran before a resource failure, so the
/// error's "what now?" is answerable from the transcript alone: raise the
/// budget, lower `--min-fidelity`, or accept that the circuit is too big.
fn print_degradation_trail(
    sim: &qdd_sim::DdSimulator,
    circuit: &qdd_circuit::QuantumCircuit,
    limits: &qdd_core::Limits,
) {
    let stats = sim.stats();
    eprintln!("degradation ladder exhausted:");
    eprintln!(
        "  1. pressure GC: {} forced collection{}",
        stats.gc_pressure_runs,
        if stats.gc_pressure_runs == 1 { "" } else { "s" }
    );
    match limits.min_fidelity {
        Some(f) if stats.approx_rounds > 0 => eprintln!(
            "  2. approximation: {} rounds within --min-fidelity {f} \
             (bound {:.6}), still over budget",
            stats.approx_rounds, stats.fidelity_lower_bound
        ),
        Some(f) => eprintln!(
            "  2. approximation: no subtree prunable within --min-fidelity {f}"
        ),
        None => eprintln!("  2. approximation: skipped (no --min-fidelity)"),
    }
    let n = circuit.num_qubits();
    if n > qdd_sim::MAX_DENSE_QUBITS {
        eprintln!(
            "  3. dense fallback: unavailable ({n} qubits exceeds the \
             {}-qubit dense cap)",
            qdd_sim::MAX_DENSE_QUBITS
        );
    } else {
        eprintln!("  3. dense fallback: failed");
    }
}

/// Serializes the full post-run statistics snapshot (`--stats-json`) as one
/// JSON object: circuit shape, simulator run stats, package counters,
/// per-compute-table rates, and complex-table health.
fn stats_json(circuit: &qdd_circuit::QuantumCircuit, sim: &qdd_sim::DdSimulator) -> String {
    use std::fmt::Write as _;
    fn esc(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                '\n' => vec!['\\', 'n'],
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    }
    let pkg = sim.package().stats();
    let ct = sim.package().complex_table_stats();
    let run = sim.stats();
    let mut out = String::with_capacity(1024);
    out.push_str("{\"schema\":\"qdd-stats-v1\"");
    let _ = write!(
        out,
        ",\"circuit\":{{\"name\":\"{}\",\"qubits\":{},\"ops\":{},\"depth\":{}}}",
        esc(circuit.name()),
        circuit.num_qubits(),
        circuit.len(),
        circuit.depth()
    );
    let _ = write!(
        out,
        ",\"run\":{{\"applied_ops\":{},\"peak_nodes\":{},\"final_nodes\":{},\
         \"dense_fallback\":{},\"gc_pressure_runs\":{},\
         \"fidelity_lower_bound\":{:.9},\"approx_rounds\":{},\
         \"approx_nodes_removed\":{}}}",
        run.applied_ops,
        run.peak_nodes,
        sim.node_count(),
        run.dense_fallback,
        run.gc_pressure_runs,
        run.fidelity_lower_bound,
        run.approx_rounds,
        run.approx_nodes_removed
    );
    let _ = write!(
        out,
        ",\"package\":{{\"vnodes_alive\":{},\"mnodes_alive\":{},\"peak_live_nodes\":{},\
         \"cache_lookups\":{},\"cache_hits\":{},\"cache_entries\":{},\"gc_runs\":{},\
         \"compute_evictions\":{},\"compute_clears\":{},\
         \"gate_cache_lookups\":{},\"gate_cache_hits\":{},\
         \"mat_peak_nodes\":{},\"identity_nodes_skipped\":{}}}",
        pkg.vnodes_alive,
        pkg.mnodes_alive,
        pkg.peak_live_nodes,
        pkg.cache_lookups,
        pkg.cache_hits,
        pkg.cache_entries,
        pkg.gc_runs,
        pkg.compute_evictions,
        pkg.compute_clears,
        pkg.gate_cache_lookups,
        pkg.gate_cache_hits,
        pkg.mat_peak_nodes,
        pkg.identity_nodes_skipped
    );
    out.push_str(",\"compute_tables\":[");
    for (i, t) in sim.package().compute_table_stats().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"lookups\":{},\"hits\":{},\"hit_rate\":{:.6},\
             \"dropped\":{},\"clears\":{},\"entries\":{}}}",
            t.name, t.lookups, t.hits, t.hit_rate(), t.dropped, t.clears, t.entries
        );
    }
    out.push(']');
    let _ = write!(
        out,
        ",\"complex_table\":{{\"entries\":{},\"lookups\":{},\"hits\":{},\
         \"front_hits\":{},\"reclaimed\":{},\"approx_bytes\":{}}}",
        ct.entries, ct.lookups, ct.hits, ct.front_hits, ct.reclaimed, ct.approx_bytes
    );
    let _ = write!(
        out,
        ",\"telemetry\":{{\"dropped_events\":{}}}}}",
        qdd_telemetry::merged_snapshot().dropped_events
    );
    out
}
