//! `qdd serve` — run the engine as a long-lived HTTP daemon.

use crate::args::Args;
use crate::commands::CmdError;
use qdd_serve::quota::Quota;
use qdd_serve::{Server, ServerConfig};

pub const HELP: &str = "\
qdd serve [options]

Runs the decision-diagram engine as a simulation-as-a-service HTTP daemon.
Endpoints (all JSON; see DESIGN.md §18 for schemas):

  GET    /healthz                     liveness + cache/session gauges
  POST   /v1/simulate                 run a circuit once, return state facts
  POST   /v1/shots                    sampling job; streams the histogram
                                      as chunked JSONL lines
  POST   /v1/verify                   equivalence-check two circuits
  POST   /v1/sessions                 open an interactive step/play session
  POST   /v1/sessions/{id}/step       advance one op / resolve a choice
  POST   /v1/sessions/{id}/play       run the session to the end (seeded)
  DELETE /v1/sessions/{id}            close a session

Requests may carry their own resource budgets (a `limits` object); the
--quota-* flags set server-side ceilings that clamp them. Work-size asks
over quota (shots, body bytes, sessions) are rejected with a typed 429
naming the tripped budget. Runs degraded by fidelity-bounded approximation
report `\"degraded\": \"approximate\"` — the HTTP rendition of the CLI's
exit code 4.

OPTIONS:
  --port N               port to listen on (default 7878; 0 = ephemeral)
  --host ADDR            address to bind (default 127.0.0.1)
  --threads N            default shot-engine worker threads (0 = per CPU)
  --cache-capacity N     compiled circuits kept warm (default 32)
  --quota-shots N        max shots per job (default 1000000)
  --quota-body-bytes N   max request body size (default 1048576)
  --quota-sessions N     max live sessions (default 64)
  --quota-nodes N        ceiling + default for per-request node budgets
  --quota-complex N      ceiling + default for per-request complex budgets
  --quota-deadline-ms N  ceiling + default for per-request deadlines
  --test-hooks           honor the test_panic_at_shot request field
                         (integration testing only; never in production)";

const FLAGS: &[&str] = &[
    "--port", "--host", "--threads", "--cache-capacity", "--quota-shots",
    "--quota-body-bytes", "--quota-sessions", "--quota-nodes",
    "--quota-complex", "--quota-deadline-ms", "--test-hooks",
];

pub fn run(argv: &[String]) -> Result<(), CmdError> {
    let args = Args::parse(argv, FLAGS)?;
    if !args.positional.is_empty() {
        return Err(CmdError::Input(format!(
            "serve takes no positional arguments\n\n{HELP}"
        )));
    }
    let port: u16 = args.number("--port", 7878)?;
    let host = args.value("--host").unwrap_or("127.0.0.1").to_string();
    let mut quota = Quota {
        max_shots: args.number("--quota-shots", Quota::default().max_shots)?,
        max_body_bytes: args.number("--quota-body-bytes", Quota::default().max_body_bytes)?,
        max_sessions: args.number("--quota-sessions", Quota::default().max_sessions)?,
        ..Quota::default()
    };
    if let Some(text) = args.value("--quota-nodes") {
        quota.node_ceiling = Some(parse_positive(text, "--quota-nodes")?);
    }
    if let Some(text) = args.value("--quota-complex") {
        quota.complex_ceiling = Some(parse_positive(text, "--quota-complex")?);
    }
    if let Some(text) = args.value("--quota-deadline-ms") {
        quota.deadline_ms_ceiling = Some(parse_positive(text, "--quota-deadline-ms")?);
    }
    let config = ServerConfig {
        quota,
        cache_capacity: args.number("--cache-capacity", 32)?,
        threads: args.number("--threads", 0)?,
        enable_test_hooks: args.has("--test-hooks"),
    };
    let server = Server::bind((host.as_str(), port), config)
        .map_err(|e| CmdError::Input(format!("cannot bind {host}:{port}: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CmdError::Input(format!("cannot read bound address: {e}")))?;
    // The "listening on" line is the startup handshake: wrappers parse the
    // bound (possibly ephemeral) port from it.
    println!("qdd serve listening on http://{addr}");
    if args.has("--test-hooks") {
        println!("warning: test hooks enabled (test_panic_at_shot is honored)");
    }
    server
        .run()
        .map_err(|e| CmdError::Input(format!("accept loop failed: {e}")))
}

fn parse_positive<T: std::str::FromStr + PartialOrd + Default>(
    text: &str,
    flag: &str,
) -> Result<T, CmdError> {
    let v: T = text
        .parse()
        .map_err(|_| CmdError::Input(format!("option `{flag}`: cannot parse `{text}`")))?;
    if v <= T::default() {
        return Err(CmdError::Input(format!(
            "option `{flag}`: must be at least 1"
        )));
    }
    Ok(v)
}
