//! Shared handling of the telemetry flags (`--profile`, `--metrics-out`,
//! `--trace-out`) for the subcommands that run the engine.

use crate::args::Args;

/// Turns recording on when any telemetry output was requested. Returns
/// `true` if recording was enabled (callers pass it to [`finish`]).
pub fn start(args: &Args) -> bool {
    let wanted = args.has("--profile")
        || args.value("--metrics-out").is_some()
        || args.value("--trace-out").is_some();
    if wanted {
        qdd_telemetry::set_enabled(true);
        qdd_telemetry::reset();
        qdd_telemetry::reset_published();
    }
    wanted
}

/// Writes the requested telemetry outputs: the metrics snapshot to
/// `--metrics-out` (JSON), the event stream to `--trace-out` (Chrome
/// `trace_event` JSON for `.json` paths, JSONL otherwise), and the
/// per-phase profile table to stderr under `--profile`.
///
/// # Errors
///
/// Reports unwritable output paths.
pub fn finish(args: &Args, enabled: bool) -> Result<(), String> {
    if !enabled {
        return Ok(());
    }
    // Merged view: this thread's recordings plus everything worker threads
    // published, so multi-threaded runs report all threads' work. Events
    // stay thread-local (worker event clocks are not comparable).
    let snapshot = qdd_telemetry::merged_snapshot();
    let events = qdd_telemetry::drain_events();
    if let Some(path) = args.value("--metrics-out") {
        std::fs::write(path, snapshot.to_json())
            .map_err(|e| format!("writing `{path}`: {e}"))?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    if let Some(path) = args.value("--trace-out") {
        let payload = if path.ends_with(".json") {
            qdd_telemetry::sink::events_to_chrome_trace(&events)
        } else {
            qdd_telemetry::sink::events_to_jsonl(&events)
        };
        std::fs::write(path, payload).map_err(|e| format!("writing `{path}`: {e}"))?;
        let dropped = snapshot.dropped_events;
        if dropped > 0 {
            eprintln!("wrote {} events to {path} ({dropped} dropped at the buffer cap)", events.len());
        } else {
            eprintln!("wrote {} events to {path}", events.len());
        }
    }
    if args.has("--profile") {
        eprint!("{}", qdd_telemetry::sink::render_profile(&snapshot));
    }
    qdd_telemetry::set_enabled(false);
    Ok(())
}
