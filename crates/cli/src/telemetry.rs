//! Shared handling of the telemetry flags (`--profile`, `--metrics-out`,
//! `--trace-out`, `--record-timeline`, `--snapshot-stride`) for the
//! subcommands that run the engine.

use crate::args::Args;

/// What ran, for the timeline header and the Chrome-trace `process_name`
/// metadata. Built by the subcommand once the circuit is loaded.
pub struct Workload {
    pub name: String,
    pub qubits: usize,
    pub ops: usize,
}

/// Turns recording on when any telemetry output was requested. Returns
/// `true` if recording was enabled (callers pass it to [`finish`]).
///
/// `--record-timeline` additionally arms the per-op timeline recorder on
/// the calling thread (worker threads arm themselves from the flag the
/// shot engine captures) and applies `--snapshot-stride`.
///
/// # Errors
///
/// Reports an unparsable `--snapshot-stride`.
pub fn start(args: &Args) -> Result<bool, String> {
    let timeline = args.value("--record-timeline").is_some();
    let wanted = args.has("--profile")
        || args.value("--metrics-out").is_some()
        || args.value("--trace-out").is_some()
        || timeline;
    if wanted {
        qdd_telemetry::set_enabled(true);
        qdd_telemetry::reset();
        qdd_telemetry::reset_published();
        qdd_telemetry::reset_worker_names();
    }
    if timeline {
        let stride: u32 = args.number("--snapshot-stride", 0)?;
        qdd_telemetry::timeline::set_enabled(true);
        qdd_telemetry::timeline::reset();
        qdd_telemetry::timeline::reset_published();
        qdd_telemetry::timeline::set_worker(0);
        qdd_telemetry::timeline::set_snapshot_stride(stride);
    } else if args.value("--snapshot-stride").is_some() {
        return Err(
            "option `--snapshot-stride` requires `--record-timeline` \
             (snapshots are embedded in the timeline stream)"
                .to_string(),
        );
    }
    Ok(wanted)
}

/// Writes the requested telemetry outputs: the metrics snapshot to
/// `--metrics-out` (JSON), the event stream to `--trace-out` (Chrome
/// `trace_event` JSON for `.json` paths, JSONL otherwise), the merged
/// per-op timeline to `--record-timeline` (`qdd-timeline-v1` JSONL), and
/// the per-phase profile table to stderr under `--profile`.
///
/// # Errors
///
/// Reports unwritable output paths.
pub fn finish(args: &Args, enabled: bool, workload: Option<&Workload>) -> Result<(), String> {
    if !enabled {
        return Ok(());
    }
    // Merged view: this thread's recordings plus everything worker threads
    // published, so multi-threaded runs report all threads' work. Events
    // stay thread-local (worker event clocks are not comparable).
    let snapshot = qdd_telemetry::merged_snapshot();
    let events = qdd_telemetry::drain_events();
    if let Some(path) = args.value("--metrics-out") {
        std::fs::write(path, snapshot.to_json())
            .map_err(|e| format!("writing `{path}`: {e}"))?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    if let Some(path) = args.value("--trace-out") {
        let payload = if path.ends_with(".json") {
            qdd_telemetry::sink::events_to_chrome_trace_named(
                &events,
                workload.map(|w| w.name.as_str()),
                &qdd_telemetry::worker_names(),
            )
        } else {
            qdd_telemetry::sink::events_to_jsonl(&events)
        };
        std::fs::write(path, payload).map_err(|e| format!("writing `{path}`: {e}"))?;
        let dropped = snapshot.dropped_events;
        if dropped > 0 {
            eprintln!("wrote {} events to {path} ({dropped} dropped at the buffer cap)", events.len());
        } else {
            eprintln!("wrote {} events to {path}", events.len());
        }
    }
    if let Some(path) = args.value("--record-timeline") {
        use qdd_telemetry::timeline;
        let (records, dropped) = timeline::merged_drain();
        let workers = {
            let mut ids: Vec<u32> = records.iter().map(|r| r.worker).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len() as u32
        };
        let meta = timeline::TimelineMeta {
            circuit: workload.map(|w| w.name.clone()).unwrap_or_default(),
            qubits: workload.map_or(0, |w| w.qubits),
            ops: workload.map_or(0, |w| w.ops),
            snapshot_stride: timeline::snapshot_stride(),
            workers: workers.max(1),
        };
        std::fs::write(path, timeline::to_jsonl(&meta, &records, dropped, &events))
            .map_err(|e| format!("writing `{path}`: {e}"))?;
        if dropped > 0 {
            eprintln!(
                "wrote {} timeline records to {path} ({dropped} dropped at the buffer cap)",
                records.len()
            );
        } else {
            eprintln!("wrote {} timeline records to {path}", records.len());
        }
        timeline::set_enabled(false);
    }
    if args.has("--profile") {
        eprint!("{}", qdd_telemetry::sink::render_profile(&snapshot));
    }
    qdd_telemetry::set_enabled(false);
    Ok(())
}
