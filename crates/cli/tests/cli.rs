//! End-to-end tests of the `qdd` binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qdd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qdd"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn temp_file(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("qdd_cli_test_{}_{name}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

fn bell_qasm() -> PathBuf {
    temp_file(
        "bell.qasm",
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[1];\ncx q[1],q[0];\n",
    )
}

#[test]
fn help_lists_commands() {
    let out = qdd(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["simulate", "verify", "render", "circuit"] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn no_args_fails_with_usage() {
    let out = qdd(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_command_fails() {
    let out = qdd(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn simulate_prints_state_and_shots() {
    let file = bell_qasm();
    let out = qdd(&[
        "simulate",
        file.to_str().unwrap(),
        "--state",
        "--shots",
        "50",
        "--seed",
        "3",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 qubits"));
    assert!(text.contains("1/√2"), "{text}");
    assert!(text.contains("50 shots:"));
    std::fs::remove_file(file).ok();
}

#[test]
fn simulate_shots_route_through_the_shot_engine() {
    // Mid-circuit measurement + classical control: `--shots` must
    // re-execute per shot and histogram the classical register, not sample
    // one final state. With H;measure;if(c==1)x the qubit always ends in
    // |0⟩ — final-state sampling would report a single outcome 0, while the
    // recorded bit is a fair coin.
    let file = temp_file(
        "midcircuit.qasm",
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\ncreg c[1];\n\
         h q[0];\nmeasure q[0] -> c[0];\nif (c==1) x q[0];\n",
    );
    let out = qdd(&[
        "simulate",
        file.to_str().unwrap(),
        "--shots",
        "400",
        "--seed",
        "7",
        "--threads",
        "2",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("400 shots: mid-circuit regime"), "{text}");
    // Both classical outcomes must appear with roughly fair frequency.
    let count_of = |bits: &str| -> u64 {
        text.lines()
            .find(|l| l.trim_start().starts_with(&format!("{bits} : ")))
            .and_then(|l| l.rsplit(':').next())
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    };
    let (zeros, ones) = (count_of("0"), count_of("1"));
    assert_eq!(zeros + ones, 400, "histogram must cover all shots: {text}");
    assert!(zeros > 120 && ones > 120, "biased histogram: {text}");
    std::fs::remove_file(file).ok();
}

#[test]
fn simulate_writes_artifacts() {
    let file = bell_qasm();
    let svg = std::env::temp_dir().join(format!("qdd_cli_{}.svg", std::process::id()));
    let html = std::env::temp_dir().join(format!("qdd_cli_{}.html", std::process::id()));
    let out = qdd(&[
        "simulate",
        file.to_str().unwrap(),
        "--svg",
        svg.to_str().unwrap(),
        "--html",
        html.to_str().unwrap(),
        "--style",
        "colored",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(std::fs::read_to_string(&svg).unwrap().starts_with("<svg"));
    assert!(std::fs::read_to_string(&html).unwrap().starts_with("<!DOCTYPE html>"));
    std::fs::remove_file(file).ok();
    std::fs::remove_file(svg).ok();
    std::fs::remove_file(html).ok();
}

#[test]
fn verify_equivalent_exits_zero() {
    let a = temp_file("va.qasm", "OPENQASM 2.0; qreg q[1]; h q[0]; h q[0];");
    let b = temp_file("vb.qasm", "OPENQASM 2.0; qreg q[1]; id q[0];");
    let out = qdd(&["verify", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("equivalent"));
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn verify_inequivalent_exits_nonzero_with_witness() {
    let a = temp_file("wa.qasm", "OPENQASM 2.0; qreg q[1]; x q[0];");
    let b = temp_file("wb.qasm", "OPENQASM 2.0; qreg q[1]; h q[0];");
    let out = qdd(&["verify", a.to_str().unwrap(), b.to_str().unwrap(), "--stimuli", "4"]);
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("NOT equivalent"));
    assert!(text.contains("counterexample"));
    std::fs::remove_file(a).ok();
    std::fs::remove_file(b).ok();
}

#[test]
fn render_matrix_dot_and_json() {
    let file = temp_file("r.qasm", "OPENQASM 2.0; qreg q[2]; h q[1]; cx q[1],q[0];");
    for ext in ["dot", "json", "html", "svg"] {
        let out_path = std::env::temp_dir().join(format!(
            "qdd_cli_render_{}.{ext}",
            std::process::id()
        ));
        let out = qdd(&[
            "render",
            file.to_str().unwrap(),
            "--matrix",
            "-o",
            out_path.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{ext}: {}", String::from_utf8_lossy(&out.stderr));
        assert!(out_path.exists());
        std::fs::remove_file(out_path).ok();
    }
    std::fs::remove_file(file).ok();
}

#[test]
fn render_rejects_unknown_extension() {
    let file = bell_qasm();
    let out = qdd(&["render", file.to_str().unwrap(), "-o", "/tmp/x.png"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported output extension"));
    std::fs::remove_file(file).ok();
}

#[test]
fn circuit_ascii_art_and_optimize() {
    let file = temp_file(
        "opt.qasm",
        "OPENQASM 2.0; qreg q[2]; h q[0]; h q[0]; t q[1]; t q[1]; cx q[0],q[1];",
    );
    let out = qdd(&["circuit", file.to_str().unwrap(), "--optimize"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("optimizer: removed"));
    assert!(text.contains("q1:"));
    assert!(text.contains("[s]"), "T·T merged into S: {text}");
    std::fs::remove_file(file).ok();
}

/// Entangling ry/cx layers with incommensurate angles — the adversarial
/// workload for a node budget (mirrors the robustness suite's generator).
fn adversarial_qasm(n: usize, layers: usize) -> String {
    let mut s = format!("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[{n}];\n");
    for layer in 0..layers {
        for q in 0..n {
            let theta = 0.37 + 0.11 * (layer * n + q) as f64;
            s.push_str(&format!("ry({theta}) q[{q}];\n"));
        }
        for q in 0..n - 1 {
            s.push_str(&format!("cx q[{q}],q[{}];\n", q + 1));
        }
    }
    s
}

#[test]
fn simulate_exits_four_when_approximated() {
    let file = temp_file("approx.qasm", &adversarial_qasm(8, 3));
    let out = qdd(&[
        "simulate",
        file.to_str().unwrap(),
        "--node-limit",
        "160",
        "--min-fidelity",
        "0.5",
        "--stats-json",
    ]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "approximate completion must exit 4\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("approximated in"), "{text}");
    // The stats JSON carries the bound; it must sit in [0.5, 1).
    let json = text
        .lines()
        .find(|l| l.starts_with("{\"schema\":\"qdd-stats-v1\""))
        .expect("stats JSON line");
    let bound: f64 = json
        .split("\"fidelity_lower_bound\":")
        .nth(1)
        .and_then(|rest| rest.split(&[',', '}'][..]).next())
        .and_then(|v| v.trim().parse().ok())
        .expect("fidelity_lower_bound in stats JSON");
    assert!((0.5..1.0).contains(&bound), "bound {bound} out of range");
    assert!(json.contains("\"dense_fallback\":false"), "{json}");
    std::fs::remove_file(file).ok();
}

#[test]
fn simulate_prints_degradation_trail_on_exhaustion() {
    let file = temp_file("exhaust.qasm", &adversarial_qasm(26, 3));
    let out = qdd(&[
        "simulate",
        file.to_str().unwrap(),
        "--node-limit",
        "10000",
    ]);
    assert_eq!(out.status.code(), Some(3), "resource exhaustion must exit 3");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("degradation ladder exhausted"), "{err}");
    assert!(err.contains("skipped (no --min-fidelity)"), "{err}");
    assert!(
        err.contains("26 qubits exceeds the 24-qubit dense cap"),
        "{err}"
    );
    // The typed error names the budget that tripped and its limit.
    assert!(err.contains("max_nodes = 10000"), "{err}");
    std::fs::remove_file(file).ok();
}

#[test]
fn real_files_load() {
    let file = temp_file("t.real", ".numvars 2\n.begin\nt1 x1\nt2 x1 x2\n.end\n");
    let out = qdd(&["simulate", file.to_str().unwrap(), "--state"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("|11⟩"));
    std::fs::remove_file(file).ok();
}
