//! Interactive, navigable simulation — the semantics of the paper tool's
//! simulation tab (§IV-B).
//!
//! The web tool offers `→ / ←` single-stepping, `⏮ / ⏭` jumps (the latter
//! stopping at *special operations*), a slide-show mode, and pop-up dialogs
//! whenever a measurement or reset hits a qubit in superposition. This
//! module models those controls as a state machine:
//!
//! * [`SteppableSimulation::step_forward`] applies one operation — or
//!   returns [`StepOutcome::NeedsChoice`], the library form of the pop-up
//!   dialog, holding both outcome probabilities;
//! * [`SteppableSimulation::choose`] resolves the dialog and commits the
//!   irreversible collapse;
//! * [`SteppableSimulation::step_back`] walks history (snapshots of the
//!   shared diagram, so this is cheap);
//! * [`SteppableSimulation::fast_forward`] runs to the next barrier,
//!   choice point, or the end — the tool's `⏭`.

use crate::creg_value;
use crate::error::SimError;
use qdd_circuit::{Operation, QuantumCircuit};
use qdd_core::{DdPackage, MeasurementOutcome, PackageConfig, VecEdge};

/// Why a choice is pending.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ChoiceKind {
    /// A `measure` op: the chosen outcome is recorded into `bit`.
    Measurement {
        /// Classical bit receiving the outcome.
        bit: usize,
    },
    /// A `reset` op: the chosen branch is kept, then relabelled `|0⟩`.
    Reset,
}

/// The library form of the tool's measurement/reset pop-up dialog.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct PendingChoice {
    /// The qubit being measured or reset.
    pub qubit: usize,
    /// Probability of observing `|0⟩`.
    pub p0: f64,
    /// Probability of observing `|1⟩`.
    pub p1: f64,
    /// Measurement or reset.
    pub kind: ChoiceKind,
}

/// Result of a navigation call.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum StepOutcome {
    /// The operation at `op_index` was applied.
    Applied {
        /// Index of the applied operation.
        op_index: usize,
    },
    /// A dialog is open; resolve it with
    /// [`SteppableSimulation::choose`].
    NeedsChoice(PendingChoice),
    /// The circuit is exhausted.
    AtEnd,
}

/// An interactive simulation session over one circuit.
#[derive(Debug)]
pub struct SteppableSimulation {
    dd: DdPackage,
    circuit: QuantumCircuit,
    cursor: usize,
    state: VecEdge,
    classical: Vec<bool>,
    /// Pre-op snapshots, one per applied operation.
    history: Vec<(VecEdge, Vec<bool>)>,
    pending: Option<PendingChoice>,
}

impl SteppableSimulation {
    /// Opens a session on `circuit`, positioned before the first operation
    /// in state `|0…0⟩` (the tool's initial screen, Fig. 8(a)).
    pub fn new(circuit: QuantumCircuit) -> Self {
        Self::with_config(circuit, PackageConfig::default())
    }

    /// Opens a session whose package runs under `config` — the budgeted
    /// form used by `qdd serve`, where interactive sessions must honor the
    /// same per-tenant resource leashes as batch requests. The initial
    /// `|0…0⟩` state is mandatory structure sized by the register width,
    /// not governed "work": it is built with the memory budgets lifted
    /// (matching `DdSimulator`), so a budget smaller than the register
    /// surfaces as a typed error on the first step, not a panic here.
    pub fn with_config(circuit: QuantumCircuit, config: PackageConfig) -> Self {
        let mut dd = DdPackage::with_config(config);
        let limits = *dd.limits();
        dd.set_limits(qdd_core::Limits {
            max_nodes: None,
            max_complex_entries: None,
            ..limits
        });
        let state = dd
            .zero_state(circuit.num_qubits())
            .expect("circuit widths are validated at construction");
        dd.set_limits(limits);
        dd.inc_ref_vec(state);
        let classical = vec![false; circuit.num_clbits()];
        SteppableSimulation {
            dd,
            circuit,
            cursor: 0,
            state,
            classical,
            history: Vec::new(),
            pending: None,
        }
    }

    /// The circuit under simulation.
    pub fn circuit(&self) -> &QuantumCircuit {
        &self.circuit
    }

    /// The decision-diagram package, for visualization.
    pub fn package(&self) -> &DdPackage {
        &self.dd
    }

    /// Mutable package access.
    pub fn package_mut(&mut self) -> &mut DdPackage {
        &mut self.dd
    }

    /// The current state diagram.
    pub fn state(&self) -> VecEdge {
        self.state
    }

    /// The classical bits recorded so far.
    pub fn classical_bits(&self) -> &[bool] {
        &self.classical
    }

    /// The number of operations applied so far.
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// `true` once every operation has been applied.
    pub fn is_finished(&self) -> bool {
        self.cursor >= self.circuit.len() && self.pending.is_none()
    }

    /// The open dialog, if any.
    pub fn pending(&self) -> Option<PendingChoice> {
        self.pending
    }

    /// The next operation to be applied.
    pub fn next_op(&self) -> Option<&Operation> {
        self.circuit.ops().get(self.cursor)
    }

    fn set_state(&mut self, new_state: VecEdge) {
        self.dd.inc_ref_vec(new_state);
        self.dd.dec_ref_vec(self.state);
        self.state = new_state;
    }

    fn snapshot(&mut self) {
        self.dd.inc_ref_vec(self.state);
        self.history.push((self.state, self.classical.clone()));
    }

    /// Applies the next operation (the tool's `→`).
    ///
    /// Measurements and resets on qubits in superposition open a dialog
    /// instead of advancing; repeated calls return the same
    /// [`StepOutcome::NeedsChoice`] until [`Self::choose`] is called.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from invalid operations.
    pub fn step_forward(&mut self) -> Result<StepOutcome, SimError> {
        if let Some(p) = self.pending {
            return Ok(StepOutcome::NeedsChoice(p));
        }
        if self.cursor >= self.circuit.len() {
            return Ok(StepOutcome::AtEnd);
        }
        qdd_telemetry::emit("sim.step").field("op_index", self.cursor);
        let op = self.circuit.ops()[self.cursor].clone();
        match &op {
            Operation::Barrier => {
                self.snapshot();
                self.cursor += 1;
                Ok(StepOutcome::Applied { op_index: self.cursor - 1 })
            }
            Operation::Gate(g) => {
                if let Some(cond) = g.condition {
                    let reg = &self.circuit.cregs()[cond.creg];
                    if creg_value(&self.classical, reg.offset, reg.size) != cond.value {
                        self.snapshot();
                        self.cursor += 1;
                        return Ok(StepOutcome::Applied { op_index: self.cursor - 1 });
                    }
                }
                let new_state =
                    self.dd
                        .apply_gate(self.state, g.gate.matrix(), &g.controls, g.target)?;
                self.snapshot();
                self.set_state(new_state);
                self.cursor += 1;
                Ok(StepOutcome::Applied { op_index: self.cursor - 1 })
            }
            Operation::Swap { .. } => {
                let mut s = self.state;
                for g in crate::gate_sequence(&op)? {
                    s = self.dd.apply_gate(s, g.gate.matrix(), &g.controls, g.target)?;
                }
                self.snapshot();
                self.set_state(s);
                self.cursor += 1;
                Ok(StepOutcome::Applied { op_index: self.cursor - 1 })
            }
            Operation::Measure { qubit, bit } => {
                if *bit >= self.classical.len() {
                    return Err(SimError::BitOutOfRange {
                        bit: *bit,
                        num_bits: self.classical.len(),
                    });
                }
                self.open_choice(*qubit, ChoiceKind::Measurement { bit: *bit })
            }
            Operation::Reset { qubit } => self.open_choice(*qubit, ChoiceKind::Reset),
        }
    }

    fn open_choice(&mut self, qubit: usize, kind: ChoiceKind) -> Result<StepOutcome, SimError> {
        let (p0, p1) = self.dd.qubit_probabilities(self.state, qubit);
        const TOL: f64 = 1e-12;
        if p1 < TOL || p0 < TOL {
            // The qubit is not in superposition: the tool applies the
            // operation silently, no dialog.
            let outcome = MeasurementOutcome::from(p0 < TOL);
            self.commit_choice(qubit, kind, outcome)?;
            return Ok(StepOutcome::Applied { op_index: self.cursor - 1 });
        }
        let pending = PendingChoice { qubit, p0, p1, kind };
        self.pending = Some(pending);
        Ok(StepOutcome::NeedsChoice(pending))
    }

    /// Resolves the open dialog with `outcome` (the user clicking `|0⟩` or
    /// `|1⟩` in Fig. 8(c)) and commits the irreversible collapse.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTransition`] if no dialog is open;
    /// [`DdError::ImpossibleOutcome`](qdd_core::DdError::ImpossibleOutcome)
    /// if the chosen branch has probability ≈ 0.
    pub fn choose(&mut self, outcome: MeasurementOutcome) -> Result<(), SimError> {
        let Some(p) = self.pending else {
            return Err(SimError::InvalidTransition {
                reason: "no pending measurement or reset to resolve",
            });
        };
        self.commit_choice(p.qubit, p.kind, outcome)?;
        self.pending = None;
        Ok(())
    }

    fn commit_choice(
        &mut self,
        qubit: usize,
        kind: ChoiceKind,
        outcome: MeasurementOutcome,
    ) -> Result<(), SimError> {
        qdd_telemetry::emit("sim.choice")
            .field("qubit", qubit)
            .field("outcome", outcome.as_bool());
        let new_state = match kind {
            ChoiceKind::Measurement { .. } => self.dd.collapse(self.state, qubit, outcome)?,
            ChoiceKind::Reset => self.dd.reset_with_outcome(self.state, qubit, outcome)?,
        };
        self.snapshot();
        if let ChoiceKind::Measurement { bit } = kind {
            self.classical[bit] = outcome.as_bool();
        }
        self.set_state(new_state);
        self.cursor += 1;
        Ok(())
    }

    /// Steps one operation back (the tool's `←`). An open dialog is
    /// dismissed first. Returns `false` at the very beginning.
    pub fn step_back(&mut self) -> bool {
        if self.pending.take().is_some() {
            return true;
        }
        let Some((state, classical)) = self.history.pop() else {
            return false;
        };
        self.dd.dec_ref_vec(self.state);
        // The popped snapshot already carries a reference.
        self.state = state;
        self.classical = classical;
        self.cursor -= 1;
        true
    }

    /// Rewinds to the initial state (the tool's `⏮`).
    pub fn to_start(&mut self) {
        while self.step_back() {}
    }

    /// Runs forward until a barrier has been applied, a dialog opens, or
    /// the circuit ends (the tool's `⏭`).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn fast_forward(&mut self) -> Result<StepOutcome, SimError> {
        loop {
            let was_barrier = matches!(self.next_op(), Some(Operation::Barrier));
            let outcome = self.step_forward()?;
            match outcome {
                StepOutcome::Applied { .. } if was_barrier => return Ok(outcome),
                StepOutcome::Applied { .. } => continue,
                other => return Ok(other),
            }
        }
    }

    /// Node count of the current state diagram.
    pub fn node_count(&self) -> usize {
        self.dd.vec_node_count(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_circuit::library;
    use qdd_complex::Complex;
    use std::f64::consts::FRAC_1_SQRT_2;

    fn bell_with_measure() -> QuantumCircuit {
        let mut qc = library::bell();
        qc.add_creg("c", 1);
        qc.measure(0, 0);
        qc
    }

    /// The full Fig. 8 walk-through: |00⟩ → Bell → measure q0 = 1 → |11⟩.
    #[test]
    fn fig_8_walkthrough() {
        let mut s = SteppableSimulation::new(bell_with_measure());
        // (a) initial |00⟩
        assert_eq!(s.node_count(), 2);
        // apply H, CX
        assert!(matches!(s.step_forward().unwrap(), StepOutcome::Applied { op_index: 0 }));
        assert!(matches!(s.step_forward().unwrap(), StepOutcome::Applied { op_index: 1 }));
        // (b) Bell state
        let amps = s.dd.to_dense_vector(s.state(), 2);
        assert!(amps[0].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
        // (c) measurement dialog with 50/50
        let out = s.step_forward().unwrap();
        match out {
            StepOutcome::NeedsChoice(p) => {
                assert_eq!(p.qubit, 0);
                assert!((p.p0 - 0.5).abs() < 1e-12);
                assert!((p.p1 - 0.5).abs() < 1e-12);
            }
            other => panic!("expected dialog, got {other:?}"),
        }
        // (d) choose |1⟩ → |11⟩
        s.choose(MeasurementOutcome::One).unwrap();
        let amps = s.dd.to_dense_vector(s.state(), 2);
        assert!(amps[3].abs() > 0.999);
        assert!(s.classical_bits()[0]);
        assert!(s.is_finished());
    }

    #[test]
    fn dialog_is_idempotent_until_resolved() {
        let mut s = SteppableSimulation::new(bell_with_measure());
        s.step_forward().unwrap();
        s.step_forward().unwrap();
        let a = s.step_forward().unwrap();
        let b = s.step_forward().unwrap();
        assert_eq!(a, b);
        assert!(matches!(a, StepOutcome::NeedsChoice(_)));
    }

    #[test]
    fn choose_without_dialog_errors() {
        let mut s = SteppableSimulation::new(library::bell());
        assert!(matches!(
            s.choose(MeasurementOutcome::Zero),
            Err(SimError::InvalidTransition { .. })
        ));
    }

    #[test]
    fn step_back_restores_states() {
        let mut s = SteppableSimulation::new(library::bell());
        s.step_forward().unwrap();
        s.step_forward().unwrap();
        let bell_nodes = s.node_count();
        assert!(s.step_back());
        assert!(s.step_back());
        assert_eq!(s.position(), 0);
        assert_eq!(s.node_count(), 2, "back to |00⟩");
        assert!(!s.step_back(), "cannot step before the start");
        // Forward again reproduces the Bell state.
        s.step_forward().unwrap();
        s.step_forward().unwrap();
        assert_eq!(s.node_count(), bell_nodes);
    }

    #[test]
    fn step_back_dismisses_dialog() {
        let mut s = SteppableSimulation::new(bell_with_measure());
        s.step_forward().unwrap();
        s.step_forward().unwrap();
        assert!(matches!(s.step_forward().unwrap(), StepOutcome::NeedsChoice(_)));
        assert!(s.step_back());
        assert!(s.pending().is_none());
        // Still positioned before the measurement.
        assert_eq!(s.position(), 2);
    }

    #[test]
    fn deterministic_measurement_skips_dialog() {
        let mut qc = QuantumCircuit::new(1);
        qc.add_creg("c", 1);
        qc.x(0).measure(0, 0);
        let mut s = SteppableSimulation::new(qc);
        s.step_forward().unwrap();
        let out = s.step_forward().unwrap();
        assert!(matches!(out, StepOutcome::Applied { .. }));
        assert!(s.classical_bits()[0]);
    }

    #[test]
    fn fast_forward_stops_at_barriers() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).barrier().h(1).barrier().cx(0, 1);
        let mut s = SteppableSimulation::new(qc);
        let out = s.fast_forward().unwrap();
        assert!(matches!(out, StepOutcome::Applied { op_index: 1 }));
        assert_eq!(s.position(), 2, "stopped right after the first barrier");
        let out = s.fast_forward().unwrap();
        assert!(matches!(out, StepOutcome::Applied { op_index: 3 }));
        let out = s.fast_forward().unwrap();
        assert!(matches!(out, StepOutcome::AtEnd));
        assert!(s.is_finished());
    }

    #[test]
    fn fast_forward_stops_at_dialogs() {
        let mut s = SteppableSimulation::new(bell_with_measure());
        let out = s.fast_forward().unwrap();
        assert!(matches!(out, StepOutcome::NeedsChoice(_)));
    }

    #[test]
    fn to_start_resets_everything() {
        let mut s = SteppableSimulation::new(bell_with_measure());
        s.fast_forward().unwrap();
        s.choose(MeasurementOutcome::Zero).unwrap();
        assert!(s.is_finished());
        s.to_start();
        assert_eq!(s.position(), 0);
        assert!(!s.classical_bits()[0]);
        assert_eq!(s.node_count(), 2);
    }

    #[test]
    fn conditioned_gate_in_stepper() {
        let mut qc = QuantumCircuit::new(2);
        let c = qc.add_creg("c", 1);
        qc.x(0);
        qc.measure(0, 0);
        qc.gate_if(
            qdd_circuit::StandardGate::X,
            vec![],
            1,
            qdd_circuit::Condition { creg: c, value: 1 },
        );
        let mut s = SteppableSimulation::new(qc);
        while !s.is_finished() {
            match s.step_forward().unwrap() {
                StepOutcome::NeedsChoice(_) => s.choose(MeasurementOutcome::One).unwrap(),
                StepOutcome::AtEnd => break,
                StepOutcome::Applied { .. } => {}
            }
        }
        let amps = s.dd.to_dense_vector(s.state(), 2);
        assert!(amps[0b11].abs() > 0.999);
    }

    use qdd_circuit::QuantumCircuit;
}
