//! Simulation error type.

use qdd_core::DdError;
use std::error::Error;
use std::fmt;

/// Errors arising during simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The underlying decision-diagram package rejected an operation.
    Dd(DdError),
    /// A measurement wrote to a classical bit outside the declared
    /// registers.
    BitOutOfRange {
        /// The rejected bit index.
        bit: usize,
        /// The number of declared bits.
        num_bits: usize,
    },
    /// A navigation or choice call that is invalid in the current session
    /// state (e.g. `choose` without a pending measurement).
    InvalidTransition {
        /// What went wrong.
        reason: &'static str,
    },
    /// Dense simulation requested for a register too large to materialize.
    TooLarge {
        /// Requested register size.
        num_qubits: usize,
        /// The maximum size the dense simulator accepts.
        max: usize,
    },
    /// A shot worker panicked. The coordinator contains the panic instead of
    /// aborting the process: remaining workers stop at the next shot
    /// boundary and partial telemetry already published still merges.
    WorkerPanicked {
        /// Index of the panicking worker (shot-range order).
        worker: usize,
        /// The panic payload, if it was a string (the common
        /// `panic!`/`expect` case); `"<non-string payload>"` otherwise.
        payload: String,
    },
    /// The job was cancelled through its cooperative cancel flag (e.g. a
    /// server dropped the request after the client disconnected).
    Cancelled,
    /// An operation could not be decomposed into elementary gates (its
    /// `to_gate_sequence` returned nothing) where a unitary was required.
    NonDecomposableOp {
        /// Name of the offending operation.
        op: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Dd(e) => write!(f, "{e}"),
            SimError::BitOutOfRange { bit, num_bits } => {
                write!(f, "classical bit {bit} out of range for {num_bits} bits")
            }
            SimError::InvalidTransition { reason } => write!(f, "{reason}"),
            SimError::TooLarge { num_qubits, max } => {
                write!(f, "dense simulation of {num_qubits} qubits exceeds the {max}-qubit limit")
            }
            SimError::WorkerPanicked { worker, payload } => {
                write!(f, "shot worker {worker} panicked: {payload}")
            }
            SimError::Cancelled => write!(f, "job cancelled"),
            SimError::NonDecomposableOp { op } => {
                write!(f, "operation '{op}' has no elementary gate decomposition")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Dd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DdError> for SimError {
    fn from(e: DdError) -> Self {
        SimError::Dd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_dd_error_with_source() {
        let e = SimError::from(DdError::ZeroVector);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("zero norm"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SimError>();
    }
}
