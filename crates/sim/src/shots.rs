//! The shot engine: correct, parallel, batched shot sampling.
//!
//! `--shots N` means "run the circuit `N` times on ideal hardware and
//! histogram what the classical registers read". The engine produces exactly
//! that distribution while doing as little work as each circuit *requires*,
//! dispatching on the circuit's [`MeasurementRegime`]:
//!
//! * **No measurement** — the final state is deterministic; run the circuit
//!   once and draw all shots by randomized path traversal over the shared
//!   final DD (paper §III-B, ref \[16\]), memoized through a
//!   [`SamplingTableau`](qdd_core::SamplingTableau) so each shot is a
//!   hash-free index walk.
//! * **Terminal measurement** — by the deferred-measurement principle a
//!   trailing measurement block commutes with nothing after it (there *is*
//!   nothing after it); run the unitary prefix once, sample basis states
//!   from the final DD, and read each shot's classical bits directly off the
//!   sampled index.
//! * **Mid-circuit** — collapse feeds back into the evolution (conditioned
//!   gates, resets, measure-then-evolve), so each shot re-executes the
//!   circuit. The engine first builds every gate operator the circuit needs
//!   **once**, deterministically, and freezes that package into a shared
//!   [`FrozenDd`] base; shots then fan out across [`std::thread`] workers
//!   whose simulators are cheap overlays over the shared base
//!   ([`DdSimulator::with_frozen_base`]) — one warm gate-DD cache, one set
//!   of interned weights and frozen unique tables for the whole job instead
//!   of per-worker duplicates. Each **shot** — not worker — gets its own
//!   RNG stream derived with [`shot_seed`], and each shot starts from a
//!   reset overlay, so outcomes depend only on `(frozen base, base seed,
//!   shot index)`: the merged histogram is bit-identical regardless of
//!   thread count. Runs under resource budgets (node/complex-entry limits)
//!   keep the former per-worker-package path, preserving exact budget
//!   semantics.
//!
//! Resource governance propagates: the [`PackageConfig`] limits apply inside
//! every worker, and [`Limits::deadline`](qdd_core::Limits::deadline) is
//! additionally enforced as a wall-clock budget for the whole sampling job
//! (workers stop between shots once it elapses).

use crate::error::SimError;
use crate::simulator::DdSimulator;
use crate::creg_value;
use qdd_circuit::{MeasurementAnalysis, MeasurementRegime, Operation, QuantumCircuit};
use qdd_complex::FxHashMap;
use qdd_core::{DdError, DdPackage, FrozenDd, PackageConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// SplitMix64 increment (the 64-bit golden ratio).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a bijective avalanche mix of the state word.
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of shot `shot` under base seed `base`: the `shot`-th output
/// of the SplitMix64 stream starting at state `base`.
///
/// Unlike the old `base + shot` scheme, nearby base seeds produce unrelated
/// shot streams (`shot_seed(s, i)` and `shot_seed(s + 1, j)` share no
/// structure) and adjacent shots are decorrelated by the avalanche mix.
/// Because the seed depends only on `(base, shot)`, any partition of shots
/// across workers reproduces the same per-shot outcomes.
pub fn shot_seed(base: u64, shot: u64) -> u64 {
    splitmix64_mix(base.wrapping_add(GAMMA.wrapping_mul(shot.wrapping_add(1))))
}

/// What the histogram keys of a [`ShotReport`] mean.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HistogramKind {
    /// Keys are basis-state indices of the final state (bit `q` ↔ qubit
    /// `q`) — circuits without measurements.
    BasisStates,
    /// Keys are the value of the concatenated classical bits (bit `i` ↔
    /// global classical bit `i`) — circuits with measurements.
    ClassicalBits,
}

/// Configuration of one sampling job.
#[derive(Clone, Debug)]
pub struct ShotOptions {
    /// Number of shots to draw.
    pub shots: u64,
    /// Base RNG seed; every per-shot stream derives from it via
    /// [`shot_seed`].
    pub seed: u64,
    /// Worker threads for the mid-circuit regime (`0` = one per available
    /// CPU). The fast-path regimes are single-threaded by construction —
    /// one diagram serves every shot.
    pub threads: usize,
    /// Package configuration (tolerance, caches, [`qdd_core::Limits`])
    /// applied inside every worker.
    pub config: PackageConfig,
    /// Whether workers may degrade to dense simulation under node-budget
    /// pressure (mirrors [`DdSimulator::set_dense_fallback`]).
    pub dense_fallback: bool,
    /// Cooperative external cancel flag. When a caller (e.g. a server whose
    /// client disconnected mid-stream) sets it, workers stop at the next
    /// shot boundary and the job returns [`SimError::Cancelled`] instead of
    /// burning CPU to completion.
    pub cancel: Option<Arc<AtomicBool>>,
    /// A prebuilt warm base (from [`build_warm_base`] on the **same circuit
    /// and structural config**) to reuse instead of rebuilding the job's
    /// gate DDs. Only consulted when the shared frozen-base path applies
    /// (no node/complex budgets); budgeted jobs keep their per-worker
    /// packages for exact budget semantics.
    pub warm_base: Option<Arc<FrozenDd>>,
    /// Test-only hook: forces the worker owning this shot index to panic at
    /// that shot, exercising the panic-containment path. Not part of the
    /// stable API.
    #[doc(hidden)]
    pub panic_at_shot: Option<u64>,
}

impl Default for ShotOptions {
    fn default() -> Self {
        ShotOptions {
            shots: 1024,
            seed: 1,
            threads: 0,
            config: PackageConfig::default(),
            dense_fallback: true,
            cancel: None,
            warm_base: None,
            panic_at_shot: None,
        }
    }
}

impl ShotOptions {
    /// Convenience constructor for the common `(shots, seed)` case.
    pub fn new(shots: u64, seed: u64) -> Self {
        ShotOptions {
            shots,
            seed,
            ..ShotOptions::default()
        }
    }
}

/// The result of a sampling job.
#[derive(Clone, Debug)]
pub struct ShotReport {
    /// Outcome → count; see [`ShotReport::kind`] for the key encoding.
    pub histogram: FxHashMap<u64, u64>,
    /// The regime the circuit was classified into.
    pub regime: MeasurementRegime,
    /// What the histogram keys mean.
    pub kind: HistogramKind,
    /// Total shots drawn (the histogram counts sum to this).
    pub shots: u64,
    /// Worker threads actually used (1 for the fast-path regimes).
    pub threads_used: usize,
    /// Shots completed per worker (diagnostics; sums to `shots`).
    pub worker_shots: Vec<u64>,
    /// Wall time of the whole job.
    pub elapsed: Duration,
    /// Lower bound on the fidelity of the state(s) the histogram was drawn
    /// from — `1.0` unless the approximation rung
    /// ([`Limits::min_fidelity`](qdd_core::Limits::min_fidelity)) degraded
    /// a run. In the mid-circuit regime this is the **minimum** across all
    /// workers' shots: the weakest guarantee any sampled trajectory had.
    pub fidelity_lower_bound: f64,
    /// Gate-DD cache lookups across the whole job (warm-base construction
    /// plus every worker), for per-request cache accounting.
    pub gate_cache_lookups: u64,
    /// Gate-DD cache hits across the whole job. A job served from an
    /// already-warm injected base ([`ShotOptions::warm_base`]) skips the
    /// construction misses, so its hit rate is strictly higher.
    pub gate_cache_hits: u64,
}

impl ShotReport {
    /// Whether any contributing run was degraded by the approximation rung.
    pub fn is_approximate(&self) -> bool {
        self.fidelity_lower_bound < 1.0
    }

    /// Gate-DD cache hit rate over the whole job (`0.0` when no lookups).
    pub fn gate_cache_hit_rate(&self) -> f64 {
        if self.gate_cache_lookups == 0 {
            0.0
        } else {
            self.gate_cache_hits as f64 / self.gate_cache_lookups as f64
        }
    }

    /// The histogram as deterministic JSONL lines (`qdd-histogram-v1`
    /// entries), sorted by outcome value. The CLI `--histogram-out` path and
    /// the `qdd-serve` `/v1/shots` stream both emit exactly these lines, so
    /// the two transports are byte-comparable.
    pub fn histogram_lines(&self) -> Vec<String> {
        let mut entries: Vec<(u64, u64)> = self.histogram.iter().map(|(&v, &c)| (v, c)).collect();
        entries.sort_unstable();
        entries
            .into_iter()
            .map(|(value, count)| format!("{{\"value\":{value},\"count\":{count}}}"))
            .collect()
    }
}

/// Runs a sampling job over `circuit`, dispatching on its measurement
/// regime (module docs).
///
/// # Errors
///
/// Propagates [`SimError`] from the underlying simulations, including
/// resource-budget errors from the configured
/// [`Limits`](qdd_core::Limits). In the mid-circuit regime the first
/// failing shot wins (lowest shot index); remaining workers stop at the
/// next shot boundary.
pub fn run(circuit: &QuantumCircuit, opts: &ShotOptions) -> Result<ShotReport, SimError> {
    let t0 = Instant::now();
    let analysis = circuit.measurement_analysis();
    let mut span = qdd_telemetry::span("shots.engine");
    span.field("regime", analysis.regime.name());
    span.field("shots", opts.shots);
    if externally_cancelled(opts) {
        return Err(SimError::Cancelled);
    }
    let regime_gauge = match analysis.regime {
        MeasurementRegime::NoMeasurement => 0.0,
        MeasurementRegime::TerminalMeasurement => 1.0,
        MeasurementRegime::MidCircuit => 2.0,
    };
    qdd_telemetry::gauge_set("shots.regime", regime_gauge);
    let mut report = match analysis.regime {
        MeasurementRegime::MidCircuit => run_mid_circuit(circuit, &analysis, opts),
        _ => run_shared_state(circuit, &analysis, opts),
    }?;
    report.elapsed = t0.elapsed();
    span.field("threads", report.threads_used);
    qdd_telemetry::counter_add("shots.sampled", report.shots);
    for (w, &n) in report.worker_shots.iter().enumerate() {
        qdd_telemetry::emit("shots.worker")
            .field("worker", w)
            .field("shots", n);
    }
    Ok(report)
}

/// No-measurement / terminal-measurement fast path: one run of the unitary
/// prefix, then all shots from the shared final diagram.
fn run_shared_state(
    circuit: &QuantumCircuit,
    analysis: &MeasurementAnalysis,
    opts: &ShotOptions,
) -> Result<ShotReport, SimError> {
    let warm = opts.warm_base.as_ref().filter(|_| shared_path_applies(opts));
    let mut sim = match warm {
        Some(base) => {
            let mut s = DdSimulator::with_frozen_base(circuit.clone(), opts.seed, base);
            // The overlay copies the base's config, which carries no
            // deadline; arm this request's budget explicitly.
            if let Some(budget) = opts.config.limits.deadline {
                s.package_mut().arm_deadline_for(budget);
            }
            s
        }
        None => DdSimulator::with_config(circuit.clone(), opts.seed, opts.config),
    };
    sim.set_dense_fallback(opts.dense_fallback);
    sim.run_prefix(analysis.prefix_len)?;
    if externally_cancelled(opts) {
        return Err(SimError::Cancelled);
    }
    // Sampling consumes the simulator's seeded stream whether the prefix
    // stayed on diagrams or degraded to dense — backend-transparent
    // seeding. The tableau walk is bit-identical to `sample_once`, so the
    // DD fast path reproduces exactly what naive per-shot traversal of the
    // same diagram would draw.
    let basis_counts = if sim.degraded_to_dense() {
        sim.sample(opts.shots)
    } else {
        let tableau = sim.package().sampling_tableau(sim.state());
        qdd_telemetry::gauge_set("shots.tableau_nodes", tableau.node_count() as f64);
        let mut rng = SmallRng::seed_from_u64(opts.seed);
        tableau.sample(opts.shots, &mut rng)
    };
    let (histogram, kind) = if analysis.regime == MeasurementRegime::TerminalMeasurement {
        // Fold the basis histogram through the trailing measurement map:
        // each sampled index *is* the joint outcome of the terminal block.
        let nbits = circuit.num_clbits();
        let mut folded: FxHashMap<u64, u64> = FxHashMap::default();
        let mut bits = vec![false; nbits];
        for (&basis, &count) in &basis_counts {
            for &(qubit, bit) in &analysis.terminal_measurements {
                bits[bit] = (basis >> qubit) & 1 == 1;
            }
            *folded.entry(creg_value(&bits, 0, nbits)).or_insert(0) += count;
            bits.iter_mut().for_each(|b| *b = false);
        }
        (folded, HistogramKind::ClassicalBits)
    } else {
        (basis_counts, HistogramKind::BasisStates)
    };
    Ok(ShotReport {
        histogram,
        regime: analysis.regime,
        kind,
        shots: opts.shots,
        threads_used: 1,
        worker_shots: vec![opts.shots],
        elapsed: Duration::ZERO,
        // One shared state served every shot; its bound is the job's bound.
        fidelity_lower_bound: sim.stats().fidelity_lower_bound,
        gate_cache_lookups: sim.package().gate_cache_lookups(),
        gate_cache_hits: sim.package().gate_cache_hits(),
    })
}

/// Whether the job's external cancel flag has been raised.
fn externally_cancelled(opts: &ShotOptions) -> bool {
    opts.cancel
        .as_ref()
        .is_some_and(|c| c.load(Ordering::Relaxed))
}

/// What one worker returns on success: its partial histogram,
/// completed-shot count, the weakest fidelity lower bound among its shots,
/// and its package's gate-DD cache traffic.
struct WorkerOutput {
    counts: FxHashMap<u64, u64>,
    done: u64,
    bound: f64,
    gate_lookups: u64,
    gate_hits: u64,
}

/// What one worker returns: its output, or the index of the shot that
/// failed and why.
type WorkerResult = Result<WorkerOutput, (u64, SimError)>;

/// A frozen warm base plus the gate-DD cache traffic its construction
/// generated, so jobs can account construction misses against the request
/// that paid for them (a cached base re-injected via
/// [`ShotOptions::warm_base`] contributes neither).
#[derive(Clone, Debug)]
pub struct WarmBase {
    /// The frozen package: `|0…0⟩` plus every gate operator of the circuit.
    pub frozen: Arc<FrozenDd>,
    /// Gate-DD cache lookups during construction.
    pub gate_cache_lookups: u64,
    /// Gate-DD cache hits during construction.
    pub gate_cache_hits: u64,
}

/// Builds the job-wide warm base for the shared-package path: `|0…0⟩` and
/// every gate operator the circuit applies, constructed **sequentially** (so
/// the result is a deterministic function of the circuit and config), then
/// frozen for overlay sharing. Servers cache the result keyed by
/// (circuit source, structural config) and re-inject it via
/// [`ShotOptions::warm_base`] so later requests skip construction entirely.
pub fn build_warm_base(
    circuit: &QuantumCircuit,
    config: PackageConfig,
) -> Result<WarmBase, SimError> {
    let n = circuit.num_qubits();
    let mut dd = DdPackage::with_config(config);
    let zero = dd.zero_state(n)?;
    dd.inc_ref_vec(zero);
    for op in circuit.ops() {
        match op {
            Operation::Gate(g) => {
                dd.gate_dd(g.gate.matrix(), &g.controls, g.target, n)?;
            }
            Operation::Swap { .. } => {
                for g in crate::gate_sequence(op)? {
                    dd.gate_dd(g.gate.matrix(), &g.controls, g.target, n)?;
                }
            }
            _ => {}
        }
    }
    let gate_cache_lookups = dd.gate_cache_lookups();
    let gate_cache_hits = dd.gate_cache_hits();
    Ok(WarmBase {
        frozen: dd.freeze(),
        gate_cache_lookups,
        gate_cache_hits,
    })
}

/// Whether the shared frozen-base path may serve this job. Budgeted runs
/// keep the per-worker-package path: an overlay's live-node accounting
/// includes the frozen base, which would tighten `max_nodes` /
/// `max_complex_entries` semantics mid-flight.
fn shared_path_applies(opts: &ShotOptions) -> bool {
    opts.config.limits.max_nodes.is_none() && opts.config.limits.max_complex_entries.is_none()
}

/// Mid-circuit regime: per-shot re-execution, fanned out over workers.
fn run_mid_circuit(
    circuit: &QuantumCircuit,
    analysis: &MeasurementAnalysis,
    opts: &ShotOptions,
) -> Result<ShotReport, SimError> {
    let threads = crate::resolve_threads(opts.threads);
    let threads = threads.clamp(1, opts.shots.max(1) as usize);
    let (base, build_lookups, build_hits) = if shared_path_applies(opts) {
        match &opts.warm_base {
            // An injected, already-warm base: construction was paid for by
            // an earlier job, so this one records no construction traffic.
            Some(frozen) => (Some(frozen.clone()), 0, 0),
            None => {
                let warm = build_warm_base(circuit, opts.config)?;
                (Some(warm.frozen), warm.gate_cache_lookups, warm.gate_cache_hits)
            }
        }
    } else {
        (None, 0, 0)
    };
    qdd_telemetry::gauge_set(
        "shots.shared_base",
        if base.is_some() { 1.0 } else { 0.0 },
    );
    let cancel = AtomicBool::new(false);
    let start = Instant::now();
    let per_worker = opts.shots / threads as u64;
    let remainder = opts.shots % threads as u64;
    // Contiguous ranges; worker w gets [lo, hi). The partition does not
    // affect outcomes (per-shot seeds), only load balance.
    let ranges: Vec<(u64, u64)> = (0..threads as u64)
        .scan(0u64, |lo, w| {
            let len = per_worker + u64::from(w < remainder);
            let range = (*lo, *lo + len);
            *lo += len;
            Some(range)
        })
        .collect();

    // Workers inherit the coordinator's telemetry and timeline toggles,
    // record into their own thread-local registries (no shared state on the
    // hot path), and publish into the process-wide merged registries before
    // exiting, so `--stats`/`--metrics-out`/`--record-timeline` reflect
    // every thread's work. Worker ids follow the shot-range order, so the
    // merged timeline is deterministic for any thread schedule.
    let telemetry = qdd_telemetry::enabled();
    let telemetry_scope = qdd_telemetry::scope_id();
    let timeline = qdd_telemetry::timeline::enabled();
    let snapshot_stride = qdd_telemetry::timeline::snapshot_stride();
    // `join()` errors (worker panics) are captured, not propagated: one bad
    // request must not abort a long-lived process. The drop guard flips the
    // cancel flag *during unwinding*, so surviving workers stop at their
    // next shot boundary instead of running the job to completion; whatever
    // telemetry they publish before exiting still merges.
    let results: Vec<(usize, u64, std::thread::Result<WorkerResult>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .iter()
                .enumerate()
                .map(|(w, &(lo, hi))| {
                    let cancel = &cancel;
                    let base = base.as_ref();
                    let handle = scope.spawn(move || {
                        let _panic_guard = PanicCancel(cancel);
                        qdd_telemetry::set_enabled(telemetry);
                        qdd_telemetry::set_scope(telemetry_scope);
                        if telemetry {
                            qdd_telemetry::register_worker_name(
                                w as u32 + 1,
                                format!("shot-worker-{}", w + 1),
                            );
                        }
                        if timeline {
                            qdd_telemetry::timeline::set_enabled(true);
                            qdd_telemetry::timeline::set_worker(w as u32 + 1);
                            qdd_telemetry::timeline::set_snapshot_stride(snapshot_stride);
                        }
                        let result =
                            shot_worker(circuit, analysis, opts, base, lo, hi, cancel, start);
                        qdd_telemetry::publish();
                        if timeline {
                            qdd_telemetry::timeline::publish();
                        }
                        result
                    });
                    (w, lo, handle)
                })
                .collect();
            handles
                .into_iter()
                .map(|(w, lo, h)| (w, lo, h.join()))
                .collect()
        });

    let mut histogram: FxHashMap<u64, u64> = FxHashMap::default();
    let mut worker_shots = Vec::with_capacity(results.len());
    let mut first_error: Option<(u64, SimError)> = None;
    let mut fidelity_lower_bound = 1.0f64;
    let mut gate_cache_lookups = build_lookups;
    let mut gate_cache_hits = build_hits;
    let consider = |shot: u64, e: SimError, slot: &mut Option<(u64, SimError)>| {
        if slot.as_ref().is_none_or(|(s, _)| shot < *s) {
            *slot = Some((shot, e));
        }
    };
    for (worker, lo, joined) in results {
        match joined {
            Ok(Ok(out)) => {
                worker_shots.push(out.done);
                fidelity_lower_bound = fidelity_lower_bound.min(out.bound);
                gate_cache_lookups += out.gate_lookups;
                gate_cache_hits += out.gate_hits;
                for (value, count) in out.counts {
                    *histogram.entry(value).or_insert(0) += count;
                }
            }
            Ok(Err((shot, e))) => consider(shot, e, &mut first_error),
            Err(payload) => {
                // The panicking worker's first shot index is its range
                // start: deterministic "lowest failing shot wins" ordering
                // even against typed errors from other workers.
                let e = SimError::WorkerPanicked {
                    worker,
                    payload: panic_payload_string(payload.as_ref()),
                };
                consider(lo, e, &mut first_error);
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    let kind = if analysis.has_measurements {
        HistogramKind::ClassicalBits
    } else {
        HistogramKind::BasisStates
    };
    Ok(ShotReport {
        histogram,
        regime: MeasurementRegime::MidCircuit,
        kind,
        shots: opts.shots,
        threads_used: threads,
        worker_shots,
        elapsed: Duration::ZERO,
        fidelity_lower_bound,
        gate_cache_lookups,
        gate_cache_hits,
    })
}

/// Raises the job's cancel flag if its worker is unwinding from a panic, so
/// sibling workers stop at the next shot boundary. Runs during unwinding —
/// before the coordinator ever observes the `join()` error.
struct PanicCancel<'a>(&'a AtomicBool);

impl Drop for PanicCancel<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Relaxed);
        }
    }
}

/// Renders a `join()` panic payload: the string message in the common
/// `panic!`/`expect` case, a placeholder otherwise.
fn panic_payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string payload>".to_string()
    }
}

/// One worker: re-executes the circuit for shots `lo..hi`, reusing a single
/// simulator (warm gate-DD cache, no per-shot package construction). With a
/// frozen `base` the simulator is a shared-package overlay; without one it
/// owns a standalone package (budgeted runs).
#[allow(clippy::too_many_arguments)]
fn shot_worker(
    circuit: &QuantumCircuit,
    analysis: &MeasurementAnalysis,
    opts: &ShotOptions,
    base: Option<&Arc<FrozenDd>>,
    lo: u64,
    hi: u64,
    cancel: &AtomicBool,
    start: Instant,
) -> WorkerResult {
    let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
    let mut done = 0u64;
    let mut bound = 1.0f64;
    let mut sim: Option<DdSimulator> = None;
    for shot in lo..hi {
        if cancel.load(Ordering::Relaxed) {
            break;
        }
        if externally_cancelled(opts) {
            return Err(abort(cancel, shot, SimError::Cancelled));
        }
        if opts.panic_at_shot == Some(shot) {
            panic!("test hook: forced panic at shot {shot}");
        }
        if let Some(budget) = opts.config.limits.deadline {
            if start.elapsed() >= budget {
                cancel.store(true, Ordering::Relaxed);
                let excess_ms = (start.elapsed() - budget).as_millis() as u64;
                return Err((shot, SimError::Dd(DdError::DeadlineExceeded { excess_ms })));
            }
        }
        let seed = shot_seed(opts.seed, shot);
        let sim = match &mut sim {
            Some(sim) => {
                sim.restart(seed).map_err(|e| abort(cancel, shot, e))?;
                sim
            }
            none => none.insert({
                let mut s = match base {
                    Some(base) => {
                        DdSimulator::with_frozen_base(circuit.clone(), seed, base)
                    }
                    None => DdSimulator::with_config(circuit.clone(), seed, opts.config),
                };
                s.set_dense_fallback(opts.dense_fallback);
                s
            }),
        };
        sim.run().map_err(|e| abort(cancel, shot, e))?;
        let value = if analysis.has_measurements {
            creg_value(sim.classical_bits(), 0, sim.classical_bits().len())
        } else {
            // Reset-only circuits: the trajectory is random but the final
            // state still needs one basis-state draw from this shot's
            // stream.
            sim.sample(1)
                .into_iter()
                .next()
                .map(|(basis, _)| basis)
                .unwrap_or(0)
        };
        *counts.entry(value).or_insert(0) += 1;
        done += 1;
        // restart() resets the per-run account, so fold each shot's bound
        // in before the next one wipes it.
        bound = bound.min(sim.stats().fidelity_lower_bound);
    }
    // Package-level counters accumulate across restarts: this worker's
    // whole-job gate-cache traffic.
    let (gate_lookups, gate_hits) = match &sim {
        Some(s) => (s.package().gate_cache_lookups(), s.package().gate_cache_hits()),
        None => (0, 0),
    };
    Ok(WorkerOutput {
        counts,
        done,
        bound,
        gate_lookups,
        gate_hits,
    })
}

/// Flags cancellation and shapes a worker error.
fn abort(cancel: &AtomicBool, shot: u64, e: SimError) -> (u64, SimError) {
    cancel.store(true, Ordering::Relaxed);
    (shot, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shot_seeds_are_decorrelated_across_bases() {
        // The old `seed + shot` scheme made runs with base seeds s and s+1
        // share all but one stream; the SplitMix64 derivation must not.
        let a: Vec<u64> = (0..64).map(|i| shot_seed(17, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| shot_seed(18, i)).collect();
        let overlap = a.iter().filter(|s| b.contains(s)).count();
        assert_eq!(overlap, 0, "adjacent base seeds must not share shot seeds");
    }

    #[test]
    fn shot_seeds_are_distinct_within_a_run() {
        let mut seeds: Vec<u64> = (0..10_000).map(|i| shot_seed(1, i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10_000);
    }

    /// A mid-circuit workload: measure, feed the outcome into a conditioned
    /// gate, keep evolving — per-shot re-execution is unavoidable.
    fn mid_circuit_workload() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(3);
        let c = qc.add_creg("c", 2);
        qc.h(0).measure(0, 0);
        qc.gate_if(
            qdd_circuit::StandardGate::X,
            vec![],
            1,
            qdd_circuit::Condition { creg: c, value: 1 },
        );
        qc.h(2).cx(2, 1).measure(2, 1);
        qc
    }

    #[test]
    fn shared_base_histograms_are_thread_count_invariant() {
        let qc = mid_circuit_workload();
        let reference = run(&qc, &ShotOptions::new(300, 9)).unwrap();
        assert_eq!(reference.regime, MeasurementRegime::MidCircuit);
        for threads in [1, 2, 4, 8] {
            let opts = ShotOptions {
                threads,
                ..ShotOptions::new(300, 9)
            };
            let report = run(&qc, &opts).unwrap();
            assert_eq!(
                report.histogram, reference.histogram,
                "histogram diverged at {threads} threads"
            );
            assert_eq!(report.worker_shots.iter().sum::<u64>(), 300);
        }
    }

    /// The shared frozen-base path and the per-worker-package path (forced
    /// here by an ample node budget) must draw identical histograms: the
    /// warm base only changes *where* diagrams live, never what any shot
    /// computes.
    #[test]
    fn shared_base_path_matches_per_worker_package_path() {
        let qc = mid_circuit_workload();
        let shared = run(&qc, &ShotOptions::new(200, 4)).unwrap();
        let budgeted_opts = ShotOptions {
            config: qdd_core::PackageConfig {
                limits: qdd_core::Limits {
                    max_nodes: Some(10_000_000),
                    ..qdd_core::Limits::default()
                },
                ..qdd_core::PackageConfig::default()
            },
            ..ShotOptions::new(200, 4)
        };
        assert!(!shared_path_applies(&budgeted_opts));
        let budgeted = run(&qc, &budgeted_opts).unwrap();
        assert_eq!(shared.histogram, budgeted.histogram);
    }
}
