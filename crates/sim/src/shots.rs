//! The shot engine: correct, parallel, batched shot sampling.
//!
//! `--shots N` means "run the circuit `N` times on ideal hardware and
//! histogram what the classical registers read". The engine produces exactly
//! that distribution while doing as little work as each circuit *requires*,
//! dispatching on the circuit's [`MeasurementRegime`]:
//!
//! * **No measurement** — the final state is deterministic; run the circuit
//!   once and draw all shots by randomized path traversal over the shared
//!   final DD (paper §III-B, ref \[16\]), memoized through a
//!   [`SamplingTableau`](qdd_core::SamplingTableau) so each shot is a
//!   hash-free index walk.
//! * **Terminal measurement** — by the deferred-measurement principle a
//!   trailing measurement block commutes with nothing after it (there *is*
//!   nothing after it); run the unitary prefix once, sample basis states
//!   from the final DD, and read each shot's classical bits directly off the
//!   sampled index.
//! * **Mid-circuit** — collapse feeds back into the evolution (conditioned
//!   gates, resets, measure-then-evolve), so each shot re-executes the
//!   circuit. The engine first builds every gate operator the circuit needs
//!   **once**, deterministically, and freezes that package into a shared
//!   [`FrozenDd`] base; shots then fan out across [`std::thread`] workers
//!   whose simulators are cheap overlays over the shared base
//!   ([`DdSimulator::with_frozen_base`]) — one warm gate-DD cache, one set
//!   of interned weights and frozen unique tables for the whole job instead
//!   of per-worker duplicates. Each **shot** — not worker — gets its own
//!   RNG stream derived with [`shot_seed`], and each shot starts from a
//!   reset overlay, so outcomes depend only on `(frozen base, base seed,
//!   shot index)`: the merged histogram is bit-identical regardless of
//!   thread count. Runs under resource budgets (node/complex-entry limits)
//!   keep the former per-worker-package path, preserving exact budget
//!   semantics.
//!
//! Resource governance propagates: the [`PackageConfig`] limits apply inside
//! every worker, and [`Limits::deadline`](qdd_core::Limits::deadline) is
//! additionally enforced as a wall-clock budget for the whole sampling job
//! (workers stop between shots once it elapses).

use crate::error::SimError;
use crate::simulator::DdSimulator;
use crate::creg_value;
use qdd_circuit::{MeasurementAnalysis, MeasurementRegime, Operation, QuantumCircuit};
use qdd_complex::FxHashMap;
use qdd_core::{DdError, DdPackage, FrozenDd, PackageConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// SplitMix64 increment (the 64-bit golden ratio).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a bijective avalanche mix of the state word.
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of shot `shot` under base seed `base`: the `shot`-th output
/// of the SplitMix64 stream starting at state `base`.
///
/// Unlike the old `base + shot` scheme, nearby base seeds produce unrelated
/// shot streams (`shot_seed(s, i)` and `shot_seed(s + 1, j)` share no
/// structure) and adjacent shots are decorrelated by the avalanche mix.
/// Because the seed depends only on `(base, shot)`, any partition of shots
/// across workers reproduces the same per-shot outcomes.
pub fn shot_seed(base: u64, shot: u64) -> u64 {
    splitmix64_mix(base.wrapping_add(GAMMA.wrapping_mul(shot.wrapping_add(1))))
}

/// What the histogram keys of a [`ShotReport`] mean.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HistogramKind {
    /// Keys are basis-state indices of the final state (bit `q` ↔ qubit
    /// `q`) — circuits without measurements.
    BasisStates,
    /// Keys are the value of the concatenated classical bits (bit `i` ↔
    /// global classical bit `i`) — circuits with measurements.
    ClassicalBits,
}

/// Configuration of one sampling job.
#[derive(Clone, Debug)]
pub struct ShotOptions {
    /// Number of shots to draw.
    pub shots: u64,
    /// Base RNG seed; every per-shot stream derives from it via
    /// [`shot_seed`].
    pub seed: u64,
    /// Worker threads for the mid-circuit regime (`0` = one per available
    /// CPU). The fast-path regimes are single-threaded by construction —
    /// one diagram serves every shot.
    pub threads: usize,
    /// Package configuration (tolerance, caches, [`qdd_core::Limits`])
    /// applied inside every worker.
    pub config: PackageConfig,
    /// Whether workers may degrade to dense simulation under node-budget
    /// pressure (mirrors [`DdSimulator::set_dense_fallback`]).
    pub dense_fallback: bool,
}

impl Default for ShotOptions {
    fn default() -> Self {
        ShotOptions {
            shots: 1024,
            seed: 1,
            threads: 0,
            config: PackageConfig::default(),
            dense_fallback: true,
        }
    }
}

impl ShotOptions {
    /// Convenience constructor for the common `(shots, seed)` case.
    pub fn new(shots: u64, seed: u64) -> Self {
        ShotOptions {
            shots,
            seed,
            ..ShotOptions::default()
        }
    }
}

/// The result of a sampling job.
#[derive(Clone, Debug)]
pub struct ShotReport {
    /// Outcome → count; see [`ShotReport::kind`] for the key encoding.
    pub histogram: FxHashMap<u64, u64>,
    /// The regime the circuit was classified into.
    pub regime: MeasurementRegime,
    /// What the histogram keys mean.
    pub kind: HistogramKind,
    /// Total shots drawn (the histogram counts sum to this).
    pub shots: u64,
    /// Worker threads actually used (1 for the fast-path regimes).
    pub threads_used: usize,
    /// Shots completed per worker (diagnostics; sums to `shots`).
    pub worker_shots: Vec<u64>,
    /// Wall time of the whole job.
    pub elapsed: Duration,
    /// Lower bound on the fidelity of the state(s) the histogram was drawn
    /// from — `1.0` unless the approximation rung
    /// ([`Limits::min_fidelity`](qdd_core::Limits::min_fidelity)) degraded
    /// a run. In the mid-circuit regime this is the **minimum** across all
    /// workers' shots: the weakest guarantee any sampled trajectory had.
    pub fidelity_lower_bound: f64,
}

impl ShotReport {
    /// Whether any contributing run was degraded by the approximation rung.
    pub fn is_approximate(&self) -> bool {
        self.fidelity_lower_bound < 1.0
    }
}

/// Runs a sampling job over `circuit`, dispatching on its measurement
/// regime (module docs).
///
/// # Errors
///
/// Propagates [`SimError`] from the underlying simulations, including
/// resource-budget errors from the configured
/// [`Limits`](qdd_core::Limits). In the mid-circuit regime the first
/// failing shot wins (lowest shot index); remaining workers stop at the
/// next shot boundary.
pub fn run(circuit: &QuantumCircuit, opts: &ShotOptions) -> Result<ShotReport, SimError> {
    let t0 = Instant::now();
    let analysis = circuit.measurement_analysis();
    let mut span = qdd_telemetry::span("shots.engine");
    span.field("regime", analysis.regime.name());
    span.field("shots", opts.shots);
    let regime_gauge = match analysis.regime {
        MeasurementRegime::NoMeasurement => 0.0,
        MeasurementRegime::TerminalMeasurement => 1.0,
        MeasurementRegime::MidCircuit => 2.0,
    };
    qdd_telemetry::gauge_set("shots.regime", regime_gauge);
    let mut report = match analysis.regime {
        MeasurementRegime::MidCircuit => run_mid_circuit(circuit, &analysis, opts),
        _ => run_shared_state(circuit, &analysis, opts),
    }?;
    report.elapsed = t0.elapsed();
    span.field("threads", report.threads_used);
    qdd_telemetry::counter_add("shots.sampled", report.shots);
    for (w, &n) in report.worker_shots.iter().enumerate() {
        qdd_telemetry::emit("shots.worker")
            .field("worker", w)
            .field("shots", n);
    }
    Ok(report)
}

/// No-measurement / terminal-measurement fast path: one run of the unitary
/// prefix, then all shots from the shared final diagram.
fn run_shared_state(
    circuit: &QuantumCircuit,
    analysis: &MeasurementAnalysis,
    opts: &ShotOptions,
) -> Result<ShotReport, SimError> {
    let mut sim = DdSimulator::with_config(circuit.clone(), opts.seed, opts.config);
    sim.set_dense_fallback(opts.dense_fallback);
    sim.run_prefix(analysis.prefix_len)?;
    // Sampling consumes the simulator's seeded stream whether the prefix
    // stayed on diagrams or degraded to dense — backend-transparent
    // seeding. The tableau walk is bit-identical to `sample_once`, so the
    // DD fast path reproduces exactly what naive per-shot traversal of the
    // same diagram would draw.
    let basis_counts = if sim.degraded_to_dense() {
        sim.sample(opts.shots)
    } else {
        let tableau = sim.package().sampling_tableau(sim.state());
        qdd_telemetry::gauge_set("shots.tableau_nodes", tableau.node_count() as f64);
        let mut rng = SmallRng::seed_from_u64(opts.seed);
        tableau.sample(opts.shots, &mut rng)
    };
    let (histogram, kind) = if analysis.regime == MeasurementRegime::TerminalMeasurement {
        // Fold the basis histogram through the trailing measurement map:
        // each sampled index *is* the joint outcome of the terminal block.
        let nbits = circuit.num_clbits();
        let mut folded: FxHashMap<u64, u64> = FxHashMap::default();
        let mut bits = vec![false; nbits];
        for (&basis, &count) in &basis_counts {
            for &(qubit, bit) in &analysis.terminal_measurements {
                bits[bit] = (basis >> qubit) & 1 == 1;
            }
            *folded.entry(creg_value(&bits, 0, nbits)).or_insert(0) += count;
            bits.iter_mut().for_each(|b| *b = false);
        }
        (folded, HistogramKind::ClassicalBits)
    } else {
        (basis_counts, HistogramKind::BasisStates)
    };
    Ok(ShotReport {
        histogram,
        regime: analysis.regime,
        kind,
        shots: opts.shots,
        threads_used: 1,
        worker_shots: vec![opts.shots],
        elapsed: Duration::ZERO,
        // One shared state served every shot; its bound is the job's bound.
        fidelity_lower_bound: sim.stats().fidelity_lower_bound,
    })
}

/// What one worker returns: its partial histogram, completed-shot count,
/// and the weakest fidelity lower bound among its shots — or the index of
/// the shot that failed and why.
type WorkerResult = Result<(FxHashMap<u64, u64>, u64, f64), (u64, SimError)>;

/// Builds the job-wide warm base for the shared-package path: `|0…0⟩` and
/// every gate operator the circuit applies, constructed **sequentially** (so
/// the result is a deterministic function of the circuit and config), then
/// frozen for overlay sharing.
fn build_warm_base(
    circuit: &QuantumCircuit,
    config: PackageConfig,
) -> Result<Arc<FrozenDd>, SimError> {
    let n = circuit.num_qubits();
    let mut dd = DdPackage::with_config(config);
    let zero = dd.zero_state(n)?;
    dd.inc_ref_vec(zero);
    for op in circuit.ops() {
        match op {
            Operation::Gate(g) => {
                dd.gate_dd(g.gate.matrix(), &g.controls, g.target, n)?;
            }
            Operation::Swap { .. } => {
                for g in op.to_gate_sequence().expect("swap is unitary") {
                    dd.gate_dd(g.gate.matrix(), &g.controls, g.target, n)?;
                }
            }
            _ => {}
        }
    }
    Ok(dd.freeze())
}

/// Whether the shared frozen-base path may serve this job. Budgeted runs
/// keep the per-worker-package path: an overlay's live-node accounting
/// includes the frozen base, which would tighten `max_nodes` /
/// `max_complex_entries` semantics mid-flight.
fn shared_path_applies(opts: &ShotOptions) -> bool {
    opts.config.limits.max_nodes.is_none() && opts.config.limits.max_complex_entries.is_none()
}

/// Mid-circuit regime: per-shot re-execution, fanned out over workers.
fn run_mid_circuit(
    circuit: &QuantumCircuit,
    analysis: &MeasurementAnalysis,
    opts: &ShotOptions,
) -> Result<ShotReport, SimError> {
    let threads = crate::resolve_threads(opts.threads);
    let threads = threads.clamp(1, opts.shots.max(1) as usize);
    let base = if shared_path_applies(opts) {
        Some(build_warm_base(circuit, opts.config)?)
    } else {
        None
    };
    qdd_telemetry::gauge_set(
        "shots.shared_base",
        if base.is_some() { 1.0 } else { 0.0 },
    );
    let cancel = AtomicBool::new(false);
    let start = Instant::now();
    let per_worker = opts.shots / threads as u64;
    let remainder = opts.shots % threads as u64;
    // Contiguous ranges; worker w gets [lo, hi). The partition does not
    // affect outcomes (per-shot seeds), only load balance.
    let ranges: Vec<(u64, u64)> = (0..threads as u64)
        .scan(0u64, |lo, w| {
            let len = per_worker + u64::from(w < remainder);
            let range = (*lo, *lo + len);
            *lo += len;
            Some(range)
        })
        .collect();

    // Workers inherit the coordinator's telemetry and timeline toggles,
    // record into their own thread-local registries (no shared state on the
    // hot path), and publish into the process-wide merged registries before
    // exiting, so `--stats`/`--metrics-out`/`--record-timeline` reflect
    // every thread's work. Worker ids follow the shot-range order, so the
    // merged timeline is deterministic for any thread schedule.
    let telemetry = qdd_telemetry::enabled();
    let timeline = qdd_telemetry::timeline::enabled();
    let snapshot_stride = qdd_telemetry::timeline::snapshot_stride();
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(w, &(lo, hi))| {
                let cancel = &cancel;
                let base = base.as_ref();
                scope.spawn(move || {
                    qdd_telemetry::set_enabled(telemetry);
                    if telemetry {
                        qdd_telemetry::register_worker_name(
                            w as u32 + 1,
                            format!("shot-worker-{}", w + 1),
                        );
                    }
                    if timeline {
                        qdd_telemetry::timeline::set_enabled(true);
                        qdd_telemetry::timeline::set_worker(w as u32 + 1);
                        qdd_telemetry::timeline::set_snapshot_stride(snapshot_stride);
                    }
                    let result = shot_worker(circuit, analysis, opts, base, lo, hi, cancel, start);
                    qdd_telemetry::publish();
                    if timeline {
                        qdd_telemetry::timeline::publish();
                    }
                    result
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shot worker panicked"))
            .collect()
    });

    let mut histogram: FxHashMap<u64, u64> = FxHashMap::default();
    let mut worker_shots = Vec::with_capacity(results.len());
    let mut first_error: Option<(u64, SimError)> = None;
    let mut fidelity_lower_bound = 1.0f64;
    for r in results {
        match r {
            Ok((counts, done, bound)) => {
                worker_shots.push(done);
                fidelity_lower_bound = fidelity_lower_bound.min(bound);
                for (value, count) in counts {
                    *histogram.entry(value).or_insert(0) += count;
                }
            }
            Err((shot, e)) => {
                if first_error.as_ref().is_none_or(|(s, _)| shot < *s) {
                    first_error = Some((shot, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    let kind = if analysis.has_measurements {
        HistogramKind::ClassicalBits
    } else {
        HistogramKind::BasisStates
    };
    Ok(ShotReport {
        histogram,
        regime: MeasurementRegime::MidCircuit,
        kind,
        shots: opts.shots,
        threads_used: threads,
        worker_shots,
        elapsed: Duration::ZERO,
        fidelity_lower_bound,
    })
}

/// One worker: re-executes the circuit for shots `lo..hi`, reusing a single
/// simulator (warm gate-DD cache, no per-shot package construction). With a
/// frozen `base` the simulator is a shared-package overlay; without one it
/// owns a standalone package (budgeted runs).
#[allow(clippy::too_many_arguments)]
fn shot_worker(
    circuit: &QuantumCircuit,
    analysis: &MeasurementAnalysis,
    opts: &ShotOptions,
    base: Option<&Arc<FrozenDd>>,
    lo: u64,
    hi: u64,
    cancel: &AtomicBool,
    start: Instant,
) -> WorkerResult {
    let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
    let mut done = 0u64;
    let mut bound = 1.0f64;
    let mut sim: Option<DdSimulator> = None;
    for shot in lo..hi {
        if cancel.load(Ordering::Relaxed) {
            break;
        }
        if let Some(budget) = opts.config.limits.deadline {
            if start.elapsed() >= budget {
                cancel.store(true, Ordering::Relaxed);
                let excess_ms = (start.elapsed() - budget).as_millis() as u64;
                return Err((shot, SimError::Dd(DdError::DeadlineExceeded { excess_ms })));
            }
        }
        let seed = shot_seed(opts.seed, shot);
        let sim = match &mut sim {
            Some(sim) => {
                sim.restart(seed).map_err(|e| abort(cancel, shot, e))?;
                sim
            }
            none => none.insert({
                let mut s = match base {
                    Some(base) => {
                        DdSimulator::with_frozen_base(circuit.clone(), seed, base)
                    }
                    None => DdSimulator::with_config(circuit.clone(), seed, opts.config),
                };
                s.set_dense_fallback(opts.dense_fallback);
                s
            }),
        };
        sim.run().map_err(|e| abort(cancel, shot, e))?;
        let value = if analysis.has_measurements {
            creg_value(sim.classical_bits(), 0, sim.classical_bits().len())
        } else {
            // Reset-only circuits: the trajectory is random but the final
            // state still needs one basis-state draw from this shot's
            // stream.
            sim.sample(1)
                .into_iter()
                .next()
                .map(|(basis, _)| basis)
                .unwrap_or(0)
        };
        *counts.entry(value).or_insert(0) += 1;
        done += 1;
        // restart() resets the per-run account, so fold each shot's bound
        // in before the next one wipes it.
        bound = bound.min(sim.stats().fidelity_lower_bound);
    }
    Ok((counts, done, bound))
}

/// Flags cancellation and shapes a worker error.
fn abort(cancel: &AtomicBool, shot: u64, e: SimError) -> (u64, SimError) {
    cancel.store(true, Ordering::Relaxed);
    (shot, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shot_seeds_are_decorrelated_across_bases() {
        // The old `seed + shot` scheme made runs with base seeds s and s+1
        // share all but one stream; the SplitMix64 derivation must not.
        let a: Vec<u64> = (0..64).map(|i| shot_seed(17, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| shot_seed(18, i)).collect();
        let overlap = a.iter().filter(|s| b.contains(s)).count();
        assert_eq!(overlap, 0, "adjacent base seeds must not share shot seeds");
    }

    #[test]
    fn shot_seeds_are_distinct_within_a_run() {
        let mut seeds: Vec<u64> = (0..10_000).map(|i| shot_seed(1, i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10_000);
    }

    /// A mid-circuit workload: measure, feed the outcome into a conditioned
    /// gate, keep evolving — per-shot re-execution is unavoidable.
    fn mid_circuit_workload() -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(3);
        let c = qc.add_creg("c", 2);
        qc.h(0).measure(0, 0);
        qc.gate_if(
            qdd_circuit::StandardGate::X,
            vec![],
            1,
            qdd_circuit::Condition { creg: c, value: 1 },
        );
        qc.h(2).cx(2, 1).measure(2, 1);
        qc
    }

    #[test]
    fn shared_base_histograms_are_thread_count_invariant() {
        let qc = mid_circuit_workload();
        let reference = run(&qc, &ShotOptions::new(300, 9)).unwrap();
        assert_eq!(reference.regime, MeasurementRegime::MidCircuit);
        for threads in [1, 2, 4, 8] {
            let opts = ShotOptions {
                threads,
                ..ShotOptions::new(300, 9)
            };
            let report = run(&qc, &opts).unwrap();
            assert_eq!(
                report.histogram, reference.histogram,
                "histogram diverged at {threads} threads"
            );
            assert_eq!(report.worker_shots.iter().sum::<u64>(), 300);
        }
    }

    /// The shared frozen-base path and the per-worker-package path (forced
    /// here by an ample node budget) must draw identical histograms: the
    /// warm base only changes *where* diagrams live, never what any shot
    /// computes.
    #[test]
    fn shared_base_path_matches_per_worker_package_path() {
        let qc = mid_circuit_workload();
        let shared = run(&qc, &ShotOptions::new(200, 4)).unwrap();
        let budgeted_opts = ShotOptions {
            config: qdd_core::PackageConfig {
                limits: qdd_core::Limits {
                    max_nodes: Some(10_000_000),
                    ..qdd_core::Limits::default()
                },
                ..qdd_core::PackageConfig::default()
            },
            ..ShotOptions::new(200, 4)
        };
        assert!(!shared_path_applies(&budgeted_opts));
        let budgeted = run(&qc, &budgeted_opts).unwrap();
        assert_eq!(shared.histogram, budgeted.histogram);
    }
}
