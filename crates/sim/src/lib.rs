//! Quantum-circuit simulation on decision diagrams (paper §III-B / §IV-B).
//!
//! Three simulation front-ends share the circuit substrate:
//!
//! * [`DdSimulator`] — batch simulation on decision diagrams: consecutive
//!   matrix–vector products, randomized measurement/reset, classical bits;
//! * [`SteppableSimulation`] — the paper tool's interactive model: step
//!   forward/backward, run to the next barrier, and explicit
//!   measurement/reset **choice points** mirroring the tool's pop-up
//!   dialogs;
//! * [`DenseSimulator`] — the exponential state-vector baseline the paper's
//!   compactness argument is made against.
//!
//! # Examples
//!
//! Simulate the paper's Bell circuit and sample it:
//!
//! ```
//! use qdd_circuit::library;
//! use qdd_sim::DdSimulator;
//!
//! # fn main() -> Result<(), qdd_sim::SimError> {
//! let mut sim = DdSimulator::with_seed(library::bell(), 7);
//! sim.run()?;
//! let counts = sim.sample(1000);
//! // Only |00⟩ and |11⟩ appear (entanglement, paper Example 2).
//! assert!(counts.keys().all(|&k| k == 0b00 || k == 0b11));
//! # Ok(())
//! # }
//! ```

mod dense;
mod error;
pub mod shots;
mod simulator;
mod stepper;

pub use dense::{DenseSimulator, MAX_DENSE_QUBITS};
pub use error::SimError;
pub use shots::{build_warm_base, shot_seed, HistogramKind, ShotOptions, ShotReport, WarmBase};
pub use simulator::{DdSimulator, SimStats};
pub use stepper::{ChoiceKind, PendingChoice, StepOutcome, SteppableSimulation};

/// Fallible elementary-gate decomposition of an operation: the typed-error
/// spelling of `to_gate_sequence().expect(..)`. An op a future library
/// change makes non-decomposable yields [`SimError::NonDecomposableOp`]
/// naming the op instead of a process abort.
pub(crate) fn gate_sequence(
    op: &qdd_circuit::Operation,
) -> Result<Vec<qdd_circuit::GateApplication>, SimError> {
    op.to_gate_sequence().ok_or_else(|| SimError::NonDecomposableOp {
        op: simulator::op_name(op).to_string(),
    })
}

/// Resolves a user-facing thread-count option: `0` means one worker per
/// available CPU, anything else is taken literally (minimum 1).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Computes the value of a classical register from the global bit array.
///
/// Bit `i` of the result is the register's `i`-th bit (little-endian within
/// the register), matching OpenQASM `if (c == k)` semantics.
pub fn creg_value(bits: &[bool], offset: usize, size: usize) -> u64 {
    let mut v = 0u64;
    for i in 0..size {
        if bits[offset + i] {
            v |= 1 << i;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::{creg_value, gate_sequence, SimError};

    #[test]
    fn non_decomposable_op_yields_typed_error_with_op_name() {
        // Regression for `.expect("swap is unitary")`: an op without an
        // elementary decomposition must produce a typed error naming it.
        let err = gate_sequence(&qdd_circuit::Operation::Barrier).unwrap_err();
        assert_eq!(err, SimError::NonDecomposableOp { op: "barrier".into() });
        assert!(err.to_string().contains("barrier"));
    }

    #[test]
    fn creg_value_is_little_endian_within_register() {
        let bits = [true, false, true, true];
        assert_eq!(creg_value(&bits, 0, 4), 0b1101);
        assert_eq!(creg_value(&bits, 2, 2), 0b11);
        assert_eq!(creg_value(&bits, 1, 1), 0);
    }
}
