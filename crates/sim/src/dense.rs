//! Dense state-vector simulation — the exponential baseline.
//!
//! The paper's motivation for decision diagrams is that state vectors and
//! operation matrices are "exponential in size with respect to the number
//! of qubits" (§III). This module implements that straightforward
//! representation so the benchmarks can quantify the comparison on
//! identical circuits.

use crate::creg_value;
use crate::error::SimError;
use qdd_circuit::{Operation, QuantumCircuit};
use qdd_complex::{Complex, FxHashMap};
use qdd_core::{Control, GateMatrix, Polarity};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Largest register the dense simulator accepts (2²⁴ amplitudes).
pub const MAX_DENSE_QUBITS: usize = 24;

/// Smallest state (in amplitudes) worth fanning a gate application out over
/// worker threads; below this the spawn overhead dominates the kernel.
const PAR_THRESHOLD: usize = 1 << 14;

/// A raw amplitude-buffer pointer that may cross thread boundaries.
///
/// Safety argument for the parallel gate kernel: the index space is split
/// into contiguous chunks, and a pair `(i, i | t_mask)` is read and written
/// **only** by the thread whose chunk contains the pair's base index `i`
/// (the one with the target bit clear). Every amplitude belongs to exactly
/// one pair, so no two threads ever touch the same element.
#[derive(Copy, Clone)]
struct SendPtr(*mut Complex);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// A straightforward `2ⁿ`-amplitude state-vector simulator.
#[derive(Clone, Debug)]
pub struct DenseSimulator {
    n: usize,
    state: Vec<Complex>,
    classical: Vec<bool>,
    rng: SmallRng,
    /// Worker threads for the gate kernel (1 = serial). Reductions
    /// (`prob_one`, sampling) stay serial: float summation order is part of
    /// the bit-reproducibility contract.
    threads: usize,
}

impl DenseSimulator {
    /// Creates a simulator in `|0…0⟩` over `n` qubits.
    ///
    /// # Errors
    ///
    /// [`SimError::TooLarge`] beyond [`MAX_DENSE_QUBITS`].
    pub fn new(n: usize, seed: u64) -> Result<Self, SimError> {
        if n == 0 || n > MAX_DENSE_QUBITS {
            return Err(SimError::TooLarge {
                num_qubits: n,
                max: MAX_DENSE_QUBITS,
            });
        }
        let mut state = vec![Complex::ZERO; 1 << n];
        state[0] = Complex::ONE;
        Ok(DenseSimulator {
            n,
            state,
            classical: Vec::new(),
            rng: SmallRng::seed_from_u64(seed),
            threads: 1,
        })
    }

    /// Sets the worker-thread count for the gate kernel (minimum 1).
    /// Thread count never changes results: the parallel kernel writes each
    /// amplitude pair from exactly one thread and all reductions are serial.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Creates a simulator mid-circuit from an exported amplitude vector and
    /// classical-bit snapshot — the hand-off point of the DD simulator's
    /// dense degradation fallback.
    ///
    /// # Errors
    ///
    /// [`SimError::TooLarge`] beyond [`MAX_DENSE_QUBITS`] or when `state`
    /// is not `2ⁿ` amplitudes long.
    pub fn from_parts(
        n: usize,
        state: Vec<Complex>,
        classical: Vec<bool>,
        seed: u64,
    ) -> Result<Self, SimError> {
        if n == 0 || n > MAX_DENSE_QUBITS || state.len() != 1 << n {
            return Err(SimError::TooLarge {
                num_qubits: n,
                max: MAX_DENSE_QUBITS,
            });
        }
        Ok(DenseSimulator {
            n,
            state,
            classical,
            rng: SmallRng::seed_from_u64(seed),
            threads: 1,
        })
    }

    /// The current amplitudes.
    pub fn state(&self) -> &[Complex] {
        &self.state
    }

    /// The classical bits recorded so far.
    pub fn classical_bits(&self) -> &[bool] {
        &self.classical
    }

    /// Runs a whole circuit.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn run(&mut self, circuit: &QuantumCircuit) -> Result<(), SimError> {
        if circuit.num_qubits() != self.n {
            return Err(SimError::TooLarge {
                num_qubits: circuit.num_qubits(),
                max: self.n,
            });
        }
        if self.classical.len() < circuit.num_clbits() {
            self.classical.resize(circuit.num_clbits(), false);
        }
        for op in circuit.ops() {
            self.apply_operation(circuit, op)?;
        }
        Ok(())
    }

    /// Applies one operation.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] for out-of-range classical bits.
    pub fn apply_operation(
        &mut self,
        circuit: &QuantumCircuit,
        op: &Operation,
    ) -> Result<(), SimError> {
        match op {
            Operation::Barrier => {}
            Operation::Gate(g) => {
                if let Some(cond) = g.condition {
                    let reg = &circuit.cregs()[cond.creg];
                    if creg_value(&self.classical, reg.offset, reg.size) != cond.value {
                        return Ok(());
                    }
                }
                self.apply_gate(&g.gate.matrix(), &g.controls, g.target);
            }
            Operation::Swap { a, b, controls } => {
                if controls.is_empty() {
                    self.apply_swap(*a, *b);
                } else {
                    for g in crate::gate_sequence(op)? {
                        self.apply_gate(&g.gate.matrix(), &g.controls, g.target);
                    }
                }
            }
            Operation::Measure { qubit, bit } => {
                if *bit >= self.classical.len() {
                    return Err(SimError::BitOutOfRange {
                        bit: *bit,
                        num_bits: self.classical.len(),
                    });
                }
                let outcome = self.measure(*qubit);
                self.classical[*bit] = outcome;
            }
            Operation::Reset { qubit } => {
                let outcome = self.measure(*qubit);
                if outcome {
                    self.apply_gate(&qdd_core::gates::X, &[], *qubit);
                }
            }
        }
        Ok(())
    }

    /// Applies a (multi-)controlled 2×2 gate in place — data-parallel over
    /// disjoint amplitude pairs when [`Self::set_threads`] allows it and the
    /// state is large enough to amortize the fan-out.
    pub fn apply_gate(&mut self, u: &GateMatrix, controls: &[Control], target: usize) {
        let t_mask = 1usize << target;
        let mut pos_mask = 0usize;
        let mut neg_mask = 0usize;
        for c in controls {
            match c.polarity {
                Polarity::Positive => pos_mask |= 1 << c.qubit,
                Polarity::Negative => neg_mask |= 1 << c.qubit,
            }
        }
        let len = self.state.len();
        if self.threads > 1 && len >= PAR_THRESHOLD {
            let workers = self.threads.min(len);
            let chunk = len.div_ceil(workers);
            let ptr = SendPtr(self.state.as_mut_ptr());
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let (lo, hi) = (w * chunk, ((w + 1) * chunk).min(len));
                    scope.spawn(move || {
                        let ptr = ptr;
                        for i in lo..hi {
                            if i & t_mask != 0 {
                                continue; // pair is owned by its |0⟩ side
                            }
                            if i & pos_mask != pos_mask || i & neg_mask != 0 {
                                continue;
                            }
                            let j = i | t_mask;
                            // SAFETY: i has the target bit clear, so this
                            // thread (whose chunk contains i) is the unique
                            // owner of both slots of the pair; see SendPtr.
                            unsafe {
                                let a = *ptr.0.add(i);
                                let b = *ptr.0.add(j);
                                *ptr.0.add(i) = u[0][0] * a + u[0][1] * b;
                                *ptr.0.add(j) = u[1][0] * a + u[1][1] * b;
                            }
                        }
                    });
                }
            });
            return;
        }
        for i in 0..len {
            if i & t_mask != 0 {
                continue; // handle each pair once, from the |0⟩ side
            }
            if i & pos_mask != pos_mask || i & neg_mask != 0 {
                continue;
            }
            let j = i | t_mask;
            let a = self.state[i];
            let b = self.state[j];
            self.state[i] = u[0][0] * a + u[0][1] * b;
            self.state[j] = u[1][0] * a + u[1][1] * b;
        }
    }

    fn apply_swap(&mut self, a: usize, b: usize) {
        let (ma, mb) = (1usize << a, 1usize << b);
        for i in 0..self.state.len() {
            let bit_a = i & ma != 0;
            let bit_b = i & mb != 0;
            if bit_a && !bit_b {
                let j = (i & !ma) | mb;
                self.state.swap(i, j);
            }
        }
    }

    /// The probability of measuring `|1⟩` on `qubit`.
    pub fn prob_one(&self, qubit: usize) -> f64 {
        let mask = 1usize << qubit;
        self.state
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Measures `qubit`, collapsing the state; returns the outcome.
    pub fn measure(&mut self, qubit: usize) -> bool {
        let p1 = self.prob_one(qubit);
        let outcome = self.rng.gen::<f64>() < p1;
        self.collapse(qubit, outcome);
        outcome
    }

    /// Projects `qubit` onto `outcome` and renormalizes.
    ///
    /// # Panics
    ///
    /// Panics when the outcome has probability ≈ 0.
    pub fn collapse(&mut self, qubit: usize, outcome: bool) {
        let mask = 1usize << qubit;
        let p = if outcome {
            self.prob_one(qubit)
        } else {
            1.0 - self.prob_one(qubit)
        };
        assert!(p > 1e-12, "collapse onto zero-probability outcome");
        let norm = p.sqrt();
        for (i, a) in self.state.iter_mut().enumerate() {
            let keep = (i & mask != 0) == outcome;
            *a = if keep { *a / norm } else { Complex::ZERO };
        }
    }

    /// Samples `shots` basis states from the current distribution, drawing
    /// uniforms from the simulator's internal RNG.
    pub fn sample(&mut self, shots: u64) -> FxHashMap<u64, u64> {
        let probs: Vec<f64> = self.state.iter().map(|a| a.norm_sqr()).collect();
        Self::sample_distribution(&probs, shots, &mut self.rng)
    }

    /// Samples `shots` basis states drawing uniforms from a caller-provided
    /// RNG, leaving the internal stream untouched — lets a caller that owns
    /// the seeding discipline (e.g. the DD simulator after a dense
    /// degradation) keep one stream across backends.
    pub fn sample_with_rng<R: Rng + ?Sized>(
        &self,
        shots: u64,
        rng: &mut R,
    ) -> FxHashMap<u64, u64> {
        let probs: Vec<f64> = self.state.iter().map(|a| a.norm_sqr()).collect();
        Self::sample_distribution(&probs, shots, rng)
    }

    /// Inverse-CDF sampling over an explicit probability table.
    fn sample_distribution<R: Rng + ?Sized>(
        probs: &[f64],
        shots: u64,
        rng: &mut R,
    ) -> FxHashMap<u64, u64> {
        let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
        for _ in 0..shots {
            let mut r = rng.gen::<f64>();
            let mut picked = probs.len() - 1;
            for (i, p) in probs.iter().enumerate() {
                if r < *p {
                    picked = i;
                    break;
                }
                r -= p;
            }
            *counts.entry(picked as u64).or_insert(0) += 1;
        }
        counts
    }

    /// Convenience: run `circuit` from scratch and return the simulator.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn simulate(circuit: &QuantumCircuit, seed: u64) -> Result<DenseSimulator, SimError> {
        let mut sim = DenseSimulator::new(circuit.num_qubits(), seed)?;
        sim.run(circuit)?;
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_circuit::library;
    use std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn bell_amplitudes() {
        let sim = DenseSimulator::simulate(&library::bell(), 1).unwrap();
        let s = sim.state();
        assert!(s[0].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
        assert!(s[3].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
    }

    #[test]
    fn negative_control_semantics() {
        let mut sim = DenseSimulator::new(2, 1).unwrap();
        sim.apply_gate(&qdd_core::gates::X, &[Control::neg(1)], 0);
        assert!(sim.state()[0b01].abs() > 0.999);
    }

    #[test]
    fn swap_moves_excitation() {
        let mut qc = qdd_circuit::QuantumCircuit::new(3);
        qc.x(0).swap(0, 2);
        let sim = DenseSimulator::simulate(&qc, 1).unwrap();
        assert!(sim.state()[0b100].abs() > 0.999);
    }

    #[test]
    fn measurement_statistics() {
        let mut qc = qdd_circuit::QuantumCircuit::new(1);
        qc.add_creg("c", 1);
        qc.h(0).measure(0, 0);
        let mut ones = 0;
        for seed in 0..200 {
            let sim = DenseSimulator::simulate(&qc, seed).unwrap();
            if sim.classical_bits()[0] {
                ones += 1;
            }
        }
        let f = ones as f64 / 200.0;
        assert!((f - 0.5).abs() < 0.12, "frequency {f}");
    }

    #[test]
    fn rejects_oversized_register() {
        assert!(matches!(
            DenseSimulator::new(30, 1),
            Err(SimError::TooLarge { .. })
        ));
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut sim = DenseSimulator::simulate(&library::ghz(2), 7).unwrap();
        let counts = sim.sample(1000);
        assert!(counts.keys().all(|&k| k == 0 || k == 3));
    }

    #[test]
    #[should_panic(expected = "zero-probability")]
    fn collapse_impossible_outcome_panics() {
        let mut sim = DenseSimulator::new(1, 1).unwrap();
        sim.collapse(0, true);
    }

    /// The parallel kernel partitions pairs, never reorders the arithmetic
    /// within one, so any thread count must reproduce the serial run to the
    /// last bit — including controlled gates whose pairs straddle chunk
    /// boundaries.
    #[test]
    fn parallel_gate_kernel_is_bit_identical_to_serial() {
        let n = 14; // 2¹⁴ amplitudes: above PAR_THRESHOLD
        let mut qc = qdd_circuit::QuantumCircuit::new(n);
        for q in 0..n {
            qc.h(q);
        }
        for q in 0..n - 1 {
            qc.cx(q, q + 1);
            qc.rz(0.17 * (q + 1) as f64, q + 1);
        }
        qc.x(13).swap(0, 13);
        let mut serial = DenseSimulator::simulate(&qc, 1).unwrap();
        for threads in [2, 3, 8] {
            let mut par = DenseSimulator::new(n, 1).unwrap();
            par.set_threads(threads);
            par.run(&qc).unwrap();
            assert_eq!(serial.state(), par.state(), "threads = {threads}");
        }
        let _ = serial.sample(1);
    }
}
