//! Batch decision-diagram simulation.

use crate::creg_value;
use crate::dense::{DenseSimulator, MAX_DENSE_QUBITS};
use crate::error::SimError;
use qdd_circuit::{Operation, QuantumCircuit};
use qdd_complex::{Complex, FxHashMap};
use qdd_core::{
    ApproxPolicy, DdError, DdPackage, FrozenDd, MeasurementOutcome, PackageConfig, ResourceKind,
    VecEdge,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Per-run statistics of a [`DdSimulator`].
#[derive(Clone, Debug, PartialEq)]
pub struct SimStats {
    /// Node count of the state DD after each applied operation (not updated
    /// after a dense fallback).
    pub nodes_per_step: Vec<usize>,
    /// Peak node count over the run.
    pub peak_nodes: usize,
    /// Number of operations applied.
    pub applied_ops: usize,
    /// Garbage collections forced by node-budget pressure.
    pub gc_pressure_runs: u64,
    /// Compute-table entries dropped by colliding inserts (capacity
    /// pressure in the direct-mapped tables).
    pub compute_evictions: u64,
    /// Gate-DD cache probes over the run.
    pub gate_cache_lookups: u64,
    /// Gate-DD cache probes answered without rebuilding the operator.
    pub gate_cache_hits: u64,
    /// High-water mark of the package's live-node estimate.
    pub peak_live_nodes: usize,
    /// Whether the run degraded to dense state-vector simulation after the
    /// node budget stayed exhausted through a pressure GC.
    pub dense_fallback: bool,
    /// Fidelity-bounded pruning rounds taken by the approximation rung.
    pub approx_rounds: u64,
    /// Total nodes shed across all approximation rounds.
    pub approx_nodes_removed: u64,
    /// Cumulative lower bound on `|⟨ψ_exact|ψ_run⟩|²` — the product of every
    /// approximation round's bound. `1.0` means the result is exact.
    pub fidelity_lower_bound: f64,
}

impl Default for SimStats {
    fn default() -> Self {
        SimStats {
            nodes_per_step: Vec::new(),
            peak_nodes: 0,
            applied_ops: 0,
            gc_pressure_runs: 0,
            compute_evictions: 0,
            gate_cache_lookups: 0,
            gate_cache_hits: 0,
            peak_live_nodes: 0,
            dense_fallback: false,
            approx_rounds: 0,
            approx_nodes_removed: 0,
            // An untouched run is exact; every pruning round multiplies
            // its own bound in.
            fidelity_lower_bound: 1.0,
        }
    }
}

impl SimStats {
    /// Whether any approximation round degraded the state: the result is a
    /// bounded-fidelity approximation, not an exact simulation.
    pub fn is_approximate(&self) -> bool {
        self.approx_rounds > 0
    }
}

/// Stable label of an operation for telemetry events.
pub(crate) fn op_name(op: &Operation) -> &'static str {
    match op {
        Operation::Barrier => "barrier",
        Operation::Gate(g) => g.gate.name(),
        Operation::Swap { .. } => "swap",
        Operation::Measure { .. } => "measure",
        Operation::Reset { .. } => "reset",
    }
}

/// Counter baseline captured at an op's start so the timeline can attribute
/// deltas (allocations, cache hits, GC/approx activity) to that op. All
/// reads are constant-time package getters; the probe only exists while
/// timeline recording is enabled.
struct TimelineProbe {
    start: std::time::Instant,
    births: u64,
    compute_lookups: u64,
    compute_hits: u64,
    gate_lookups: u64,
    gate_hits: u64,
    live_nodes: usize,
    gc_runs: u64,
    gc_pressure_runs: u64,
    approx_rounds: u64,
    dense_fallback: bool,
}

impl TimelineProbe {
    fn begin(sim: &DdSimulator) -> Self {
        TimelineProbe {
            start: std::time::Instant::now(),
            births: sim.dd.node_births(),
            compute_lookups: sim.dd.compute_lookups(),
            compute_hits: sim.dd.compute_hits(),
            gate_lookups: sim.dd.gate_cache_lookups(),
            gate_hits: sim.dd.gate_cache_hits(),
            live_nodes: sim.dd.live_node_estimate(),
            gc_runs: sim.dd.gc_runs(),
            gc_pressure_runs: sim.dd.gc_pressure_runs(),
            approx_rounds: sim.stats.approx_rounds,
            dense_fallback: sim.stats.dense_fallback,
        }
    }
}

/// Simulates a [`QuantumCircuit`] by consecutive matrix–vector products on
/// decision diagrams (paper Example 9), handling the tool's special
/// operations — measurements collapse with seeded randomness, resets
/// discard a probabilistic branch, classically-controlled gates consult the
/// classical bits.
///
/// For interactive navigation (step back, choice dialogs) use
/// [`SteppableSimulation`](crate::SteppableSimulation) instead.
///
/// # Resource governance
///
/// The simulator honors the [`Limits`](qdd_core::Limits) of its package
/// configuration and degrades gracefully under pressure:
///
/// 1. When an operation exhausts the node budget, the simulator
///    garbage-collects under pressure and retries once.
/// 2. If [`Limits::min_fidelity`](qdd_core::Limits::min_fidelity) is set,
///    the state is pruned ([`DdPackage::prune_to_node_target`] or
///    [`DdPackage::contract_threshold`], per the configured
///    [`ApproxPolicy`]) and the operation retried — repeatedly, as long as
///    the *cumulative* fidelity lower bound (the product of all rounds'
///    bounds, tracked in [`SimStats::fidelity_lower_bound`]) stays at or
///    above `min_fidelity`.
/// 3. If the budget is still exhausted and the register is small enough
///    (≤ [`MAX_DENSE_QUBITS`]), the state is exported and the run continues
///    on a [`DenseSimulator`] (recorded in [`SimStats::dense_fallback`]).
/// 4. Otherwise the error is returned. Deadline overruns are returned
///    immediately — more memory strategies cannot buy back time.
#[derive(Debug)]
pub struct DdSimulator {
    dd: DdPackage,
    circuit: QuantumCircuit,
    state: VecEdge,
    classical: Vec<bool>,
    cursor: usize,
    rng: SmallRng,
    stats: SimStats,
    /// Dense continuation after degradation; `state` stays frozen at the
    /// (budget-sized) DD snapshot taken at the hand-off.
    dense: Option<DenseSimulator>,
    /// Gates the dense rung of the degradation ladder.
    dense_fallback_enabled: bool,
    /// Worker threads for the data-parallel dense kernels (1 = serial).
    threads: usize,
    /// Run (restart) index stamped onto timeline records, so shot replays
    /// of the same circuit stay distinguishable in a merged timeline.
    tl_run: u32,
}

impl DdSimulator {
    /// Creates a simulator over `circuit` starting from `|0…0⟩`, with an
    /// entropy-seeded RNG.
    pub fn new(circuit: QuantumCircuit) -> Self {
        Self::with_seed(circuit, rand::random())
    }

    /// Creates a simulator with a fixed RNG seed (reproducible measurement
    /// outcomes).
    pub fn with_seed(circuit: QuantumCircuit, seed: u64) -> Self {
        Self::with_config(circuit, seed, PackageConfig::default())
    }

    /// Creates a simulator with an explicit package configuration (used by
    /// the ablation benchmarks).
    pub fn with_config(circuit: QuantumCircuit, seed: u64, config: PackageConfig) -> Self {
        Self::from_package(DdPackage::with_config(config), circuit, seed)
    }

    /// Creates a simulator whose package is an **overlay** over a frozen,
    /// shared base (see [`FrozenDd`]): the base's unique tables, interned
    /// weights and gate-DD cache serve this simulator warm, and any number
    /// of sibling simulators on other threads can share the same base.
    /// [`Self::restart`] on such a simulator discards only overlay-local
    /// state, so every run is a pure function of `(base, seed)`.
    pub fn with_frozen_base(circuit: QuantumCircuit, seed: u64, base: &Arc<FrozenDd>) -> Self {
        Self::from_package(base.overlay(), circuit, seed)
    }

    fn from_package(mut dd: DdPackage, circuit: QuantumCircuit, seed: u64) -> Self {
        // The initial |0…0⟩ state is mandatory structure sized by the
        // register width, not governed "work": a node budget smaller than
        // the register must not panic the (infallible) constructors. Build
        // it with the memory budgets lifted and restore them — the first
        // governed operation then reports exhaustion as a typed error.
        let limits = *dd.limits();
        dd.set_limits(qdd_core::Limits {
            max_nodes: None,
            max_complex_entries: None,
            ..limits
        });
        let state = dd
            .zero_state(circuit.num_qubits())
            .expect("circuit widths are validated at construction");
        dd.set_limits(limits);
        dd.inc_ref_vec(state);
        let classical = vec![false; circuit.num_clbits()];
        DdSimulator {
            dd,
            circuit,
            state,
            classical,
            cursor: 0,
            rng: SmallRng::seed_from_u64(seed),
            stats: SimStats::default(),
            dense: None,
            dense_fallback_enabled: true,
            threads: 1,
            tl_run: qdd_telemetry::timeline::next_run(),
        }
    }

    /// Sets the worker-thread count for the data-parallel dense kernels
    /// (the DD path itself is sequential per simulator; parallelism across
    /// simulators comes from [`Self::with_frozen_base`] sharing). `0` means
    /// one thread per available CPU.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = crate::resolve_threads(threads);
        if let Some(dense) = &mut self.dense {
            dense.set_threads(self.threads);
        }
    }

    /// Enables or disables the dense rung of the degradation ladder
    /// (enabled by default). With it off, a node budget that stays
    /// exhausted after a pressure GC is a hard
    /// [`DdError::ResourceExhausted`].
    pub fn set_dense_fallback(&mut self, enabled: bool) {
        self.dense_fallback_enabled = enabled;
    }

    /// Whether the run has degraded to dense simulation.
    pub fn degraded_to_dense(&self) -> bool {
        self.dense.is_some()
    }

    /// Replaces the initial state with `amplitudes` (length `2ⁿ`),
    /// normalizing them. Must be called before any step.
    ///
    /// # Errors
    ///
    /// Propagates the validation of
    /// [`DdPackage::state_from_amplitudes`]; returns
    /// [`SimError::InvalidTransition`] after stepping has begun.
    pub fn set_initial_state(&mut self, amplitudes: &[Complex]) -> Result<(), SimError> {
        if self.cursor != 0 {
            return Err(SimError::InvalidTransition {
                reason: "initial state must be set before stepping",
            });
        }
        let state = self.dd.state_from_amplitudes(amplitudes)?;
        self.set_state(state);
        Ok(())
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &QuantumCircuit {
        &self.circuit
    }

    /// The current state edge.
    pub fn state(&self) -> VecEdge {
        self.state
    }

    /// The decision-diagram package (for inspection/visualization).
    pub fn package(&self) -> &DdPackage {
        &self.dd
    }

    /// Mutable package access (e.g. to compute probabilities).
    pub fn package_mut(&mut self) -> &mut DdPackage {
        &mut self.dd
    }

    /// The classical bits recorded so far.
    pub fn classical_bits(&self) -> &[bool] {
        &self.classical
    }

    /// The recorded value of classical register `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not a declared register.
    pub fn creg(&self, index: usize) -> u64 {
        let reg = &self.circuit.cregs()[index];
        creg_value(&self.classical, reg.offset, reg.size)
    }

    /// Statistics of the run so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Runs the remainder of the circuit to completion, arming the
    /// configured wall-clock deadline (if any) for the duration.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from invalid operations and
    /// [`DdError::DeadlineExceeded`] / [`DdError::ResourceExhausted`] from
    /// the resource governor.
    pub fn run(&mut self) -> Result<VecEdge, SimError> {
        self.run_until(self.circuit.len())
    }

    /// Runs the circuit's first `prefix_len` operations (from the current
    /// cursor) — the shot engine's "execute the unitary prefix once" step.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] exactly as [`run`](Self::run) does.
    pub fn run_prefix(&mut self, prefix_len: usize) -> Result<VecEdge, SimError> {
        self.run_until(prefix_len.min(self.circuit.len()))
    }

    fn run_until(&mut self, end: usize) -> Result<VecEdge, SimError> {
        let mut span = qdd_telemetry::span("sim.run");
        self.dd.arm_deadline();
        let mut outcome = Ok(());
        while self.cursor < end {
            if let Err(e) = self.step() {
                outcome = Err(e);
                break;
            }
        }
        self.dd.disarm_deadline();
        span.field("applied_ops", self.stats.applied_ops);
        span.field("peak_nodes", self.stats.peak_nodes);
        self.dd.publish_telemetry();
        outcome.map(|()| self.state)
    }

    /// Rewinds the simulator to a fresh `|0…0⟩` run of the same circuit
    /// with a new RNG seed, **keeping the decision-diagram package** — its
    /// unique tables, interned weights, and gate-DD cache stay warm, which
    /// is what makes batched per-shot re-execution cheap. The caches are
    /// result-transparent, so a restarted run is bit-identical to a fresh
    /// simulator constructed with the same seed.
    ///
    /// # Errors
    ///
    /// Propagates [`DdError`] if re-preparing `|0…0⟩` fails (node budget
    /// fully consumed by retained live states).
    pub fn restart(&mut self, seed: u64) -> Result<(), SimError> {
        self.tl_run = qdd_telemetry::timeline::next_run();
        if self.dd.is_overlay() {
            // Overlay-backed simulator: drop the previous run's local nodes
            // wholesale and replay over the untouched frozen base. The old
            // state edge dies with the overlay, so release it first.
            self.dd.dec_ref_vec(self.state);
            self.dd.reset_overlay();
            let fresh = self.dd.zero_state(self.circuit.num_qubits())?;
            self.dd.inc_ref_vec(fresh);
            self.state = fresh;
            self.classical.iter_mut().for_each(|b| *b = false);
            self.cursor = 0;
            self.rng = SmallRng::seed_from_u64(seed);
            self.dense = None;
            self.stats = SimStats::default();
            return Ok(());
        }
        let fresh = match self.dd.zero_state(self.circuit.num_qubits()) {
            Ok(s) => s,
            // A run that ended at its node cap (e.g. through the
            // approximation rung) can leave no headroom even for the fresh
            // |0…0⟩ chain; everything but the about-to-be-dropped final
            // state is garbage here, so collect under pressure and retry.
            Err(e) if e.is_resource() => {
                self.dd.gc_under_pressure();
                self.dd.zero_state(self.circuit.num_qubits())?
            }
            Err(e) => return Err(e.into()),
        };
        self.set_state(fresh);
        self.classical.iter_mut().for_each(|b| *b = false);
        self.cursor = 0;
        self.rng = SmallRng::seed_from_u64(seed);
        self.dense = None;
        self.stats = SimStats::default();
        Ok(())
    }

    /// Applies the next operation; returns `false` when the circuit is
    /// exhausted.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from invalid operations.
    pub fn step(&mut self) -> Result<bool, SimError> {
        if self.cursor >= self.circuit.len() {
            return Ok(false);
        }
        // Per-operation deadline check: cheap, and catches circuits whose
        // individual operations are too small to trip the in-recursion
        // pacing.
        if let Err(e) = self.dd.check_deadline() {
            qdd_telemetry::emit("sim.deadline").field("op_index", self.cursor);
            return Err(e.into());
        }
        let op = self.circuit.ops()[self.cursor].clone();
        let op_index = self.cursor;
        self.cursor += 1;
        // Timeline delta capture: one branch when recording is off. The
        // probe window closes after auto-GC and the node count below, so
        // GC an op provokes is attributed to that op.
        let tl_probe = if qdd_telemetry::timeline::enabled() {
            Some(TimelineProbe::begin(self))
        } else {
            None
        };
        let applied = if self.dense.is_some() {
            self.apply_dense(&op)
        } else {
            self.apply_governed(&op)
        };
        if let Err(e) = applied {
            if matches!(e, SimError::Dd(DdError::DeadlineExceeded { .. })) {
                qdd_telemetry::emit("sim.deadline").field("op_index", op_index);
            }
            // Keep the stats faithful even when the operation failed: a
            // pressure GC attempted during the failed application must be
            // visible to callers inspecting the wreckage.
            self.sync_governor_stats();
            return Err(e);
        }
        if self.dense.is_none() {
            if self.dd.wants_auto_gc() {
                self.dd.garbage_collect();
            }
            let nodes = self.dd.vec_node_count(self.state);
            self.stats.nodes_per_step.push(nodes);
            self.stats.peak_nodes = self.stats.peak_nodes.max(nodes);
            qdd_telemetry::emit("sim.op")
                .field("op_index", op_index)
                .field("op", op_name(&op))
                .field("nodes", nodes);
            qdd_telemetry::observe("sim.nodes_after_op", nodes as u64);
            if let Some(probe) = tl_probe {
                self.record_timeline(probe, op_index, &op, nodes);
            }
        } else {
            qdd_telemetry::emit("sim.op")
                .field("op_index", op_index)
                .field("op", op_name(&op))
                .field("dense", true);
            if let Some(probe) = tl_probe {
                self.record_timeline(probe, op_index, &op, 0);
            }
        }
        self.stats.applied_ops += 1;
        self.sync_governor_stats();
        Ok(true)
    }

    /// Closes a timeline probe into one [`TimelineRecord`] and buffers it:
    /// deltas of the constant-time package counters over the op window,
    /// absolute gauges at the op's end, folded-in GC/approx/fallback
    /// events, the per-level node histogram, and — every
    /// `snapshot_stride`-th op — a full structural snapshot of the state
    /// diagram. Only called while timeline recording is enabled.
    fn record_timeline(
        &self,
        probe: TimelineProbe,
        op_index: usize,
        op: &Operation,
        vec_nodes: usize,
    ) {
        use qdd_telemetry::timeline::{self, TimelineEvent, TimelineRecord};
        let dur_us = probe.start.elapsed().as_micros() as u64;
        let allocated = self.dd.node_births() - probe.births;
        let live_after = self.dd.live_node_estimate() as u64;
        // Freed = births minus net live growth; GC inside the window makes
        // the live estimate shrink, which shows up here as extra frees.
        let freed = (allocated + probe.live_nodes as u64).saturating_sub(live_after);
        let compute_lookups = self.dd.compute_lookups() - probe.compute_lookups;
        let compute_hits = self.dd.compute_hits() - probe.compute_hits;
        let gate_lookups = self.dd.gate_cache_lookups() - probe.gate_lookups;
        let gate_hits = self.dd.gate_cache_hits() - probe.gate_hits;
        let mut events = Vec::new();
        let gc_delta = self.dd.gc_runs() - probe.gc_runs;
        if gc_delta > 0 {
            events.push(TimelineEvent {
                kind: "gc",
                fields: vec![
                    ("runs", gc_delta.into()),
                    (
                        "pressure_runs",
                        (self.dd.gc_pressure_runs() - probe.gc_pressure_runs).into(),
                    ),
                ],
            });
        }
        let approx_delta = self.stats.approx_rounds - probe.approx_rounds;
        if approx_delta > 0 {
            events.push(TimelineEvent {
                kind: "approx",
                fields: vec![
                    ("rounds", approx_delta.into()),
                    ("nodes_removed", self.stats.approx_nodes_removed.into()),
                    (
                        "fidelity_lower_bound",
                        self.stats.fidelity_lower_bound.into(),
                    ),
                ],
            });
        }
        if self.stats.dense_fallback && !probe.dense_fallback {
            events.push(TimelineEvent {
                kind: "dense_fallback",
                fields: vec![("qubits", (self.circuit.num_qubits() as u64).into())],
            });
        }
        let (levels, snapshot) = if self.dense.is_some() {
            (Vec::new(), None)
        } else {
            let stride = timeline::snapshot_stride();
            let snapshot = if stride > 0 && (op_index as u64).is_multiple_of(u64::from(stride)) {
                Some(qdd_core::graph::DdGraph::from_vector(&self.dd, self.state).to_json())
            } else {
                None
            };
            (
                self.dd
                    .vec_level_profile(self.state, self.circuit.num_qubits()),
                snapshot,
            )
        };
        timeline::record(TimelineRecord {
            seq: 0,    // stamped by record()
            worker: 0, // stamped by record()
            run: self.tl_run,
            op_index: op_index as u64,
            op: op_name(op),
            qubits: op.qubits().iter().map(|&q| q as u16).collect(),
            ts_us: 0, // stamped by record()
            dur_us,
            vec_nodes: vec_nodes as u64,
            mat_nodes: self.dd.mat_live_estimate() as u64,
            peak_nodes: self.dd.peak_live_nodes() as u64,
            nodes_allocated: allocated,
            nodes_freed: freed,
            complex_entries: self.dd.complex_entry_count() as u64,
            compute_hits,
            compute_misses: compute_lookups - compute_hits,
            gate_hits,
            gate_misses: gate_lookups - gate_hits,
            levels,
            events,
            snapshot,
        });
    }

    fn sync_governor_stats(&mut self) {
        self.stats.gc_pressure_runs = self.dd.gc_pressure_runs();
        self.stats.compute_evictions = self.dd.compute_evictions();
        self.stats.gate_cache_lookups = self.dd.gate_cache_lookups();
        self.stats.gate_cache_hits = self.dd.gate_cache_hits();
        self.stats.peak_live_nodes = self.dd.peak_live_nodes();
    }

    /// One operation through the degradation ladder: apply, and on node
    /// exhaustion GC-under-pressure + retry, then fidelity-bounded
    /// approximation (when authorized), then fall back to dense.
    fn apply_governed(&mut self, op: &Operation) -> Result<(), SimError> {
        match self.apply_operation(op) {
            Err(SimError::Dd(DdError::ResourceExhausted { .. })) => {}
            other => return other,
        }
        // Rung 1: reclaim dead nodes (the failed attempt's partial results
        // are unreferenced) and retry once.
        self.dd.gc_under_pressure();
        let mut err = match self.apply_operation(op) {
            Err(SimError::Dd(e @ DdError::ResourceExhausted { .. })) => e,
            other => return other,
        };
        // Rung 2: prune the state's cheapest mass and retry, as long as the
        // cumulative fidelity bound has budget left and each round makes
        // progress. Each round targets half the current node count, so the
        // loop is finitely bounded even under a generous fidelity budget.
        while self.approximation_applies(&err) {
            if !self.approximate_round() {
                break;
            }
            match self.apply_operation(op) {
                Err(SimError::Dd(e @ DdError::ResourceExhausted { .. })) => err = e,
                other => return other,
            }
        }
        // Rung 3: continue densely when the register permits it. The qubit
        // cap is checked *before* any dense allocation is attempted.
        let n = self.circuit.num_qubits();
        if !self.dense_fallback_enabled || n > MAX_DENSE_QUBITS {
            return Err(SimError::Dd(err));
        }
        qdd_telemetry::emit("sim.dense_fallback").field("qubits", n);
        qdd_telemetry::counter_add("sim.dense_fallbacks", 1);
        let amps = self.dd.try_to_dense_vector(self.state, n)?;
        let seed = self.rng.gen::<u64>();
        let mut dense = DenseSimulator::from_parts(n, amps, self.classical.clone(), seed)?;
        dense.set_threads(self.threads);
        dense.apply_operation(&self.circuit, op)?;
        self.dense = Some(dense);
        self.stats.dense_fallback = true;
        self.sync_dense_classical();
        Ok(())
    }

    /// Whether the approximation rung may fire for this failure: it needs
    /// an authorized fidelity budget, and only helps against budgets that
    /// scale with diagram size (nodes, interned weights) — recursion-depth
    /// exhaustion is immune to a smaller state of the same width.
    fn approximation_applies(&self, err: &DdError) -> bool {
        self.dd.limits().min_fidelity.is_some()
            // Node contributions are probability masses only under L2; the
            // ablation rules opt out of the approximation rung.
            && self.dd.config().vector_normalization == qdd_core::VectorNormalization::L2
            && matches!(
                err,
                DdError::ResourceExhausted {
                    kind: ResourceKind::Nodes | ResourceKind::ComplexEntries,
                    ..
                }
            )
    }

    /// One approximation round: prune per policy, adopt the smaller state,
    /// fold the round's bound into the cumulative account, leave a
    /// telemetry trail. Returns `false` when no (further) round is possible
    /// — budget spent, pruning made no progress, or pruning itself starved
    /// — signalling the ladder to move on to the dense rung.
    fn approximate_round(&mut self) -> bool {
        let limits = *self.dd.limits();
        let Some(min_fidelity) = limits.min_fidelity else {
            return false;
        };
        // The cumulative bound is a product, so this round may spend at
        // most min_fidelity / bound_so_far before the account overdraws.
        let round_min = (min_fidelity / self.stats.fidelity_lower_bound).min(1.0);
        if round_min >= 1.0 - 1e-12 {
            return false;
        }
        let node_target = self.dd.vec_node_count(self.state) / 2;
        let result = match limits.approx_policy {
            ApproxPolicy::FidelityBudget => {
                self.dd
                    .prune_to_node_target(self.state, round_min, Some(node_target))
            }
            ApproxPolicy::Threshold { epsilon } => {
                self.dd.contract_threshold(self.state, epsilon)
            }
        };
        let (pruned, report) = match result {
            Ok(v) => v,
            // Pruning under a starved allocator (or an over-eager
            // threshold) cannot help; the dense rung still can.
            Err(_) => return false,
        };
        if report.rounds == 0 || report.fidelity_lower_bound < round_min {
            // No progress, or (threshold policy) the round would overdraw
            // the fidelity account: reject it. The rejected diagram is
            // unreferenced and reclaimed by the next collection.
            return false;
        }
        self.set_state(pruned);
        self.stats.fidelity_lower_bound *= report.fidelity_lower_bound;
        self.stats.approx_rounds += 1;
        self.stats.approx_nodes_removed += report.nodes_removed() as u64;
        qdd_telemetry::emit("degrade.approximate")
            .field("round", self.stats.approx_rounds)
            .field("nodes_before", report.nodes_before)
            .field("nodes_after", report.nodes_after)
            .field("round_bound", report.fidelity_lower_bound)
            .field("fidelity_lower_bound", self.stats.fidelity_lower_bound);
        qdd_telemetry::counter_add("approx.rounds", 1);
        qdd_telemetry::gauge_set(
            "approx.fidelity_lower_bound",
            self.stats.fidelity_lower_bound,
        );
        qdd_telemetry::gauge_set("approx.nodes_removed", self.stats.approx_nodes_removed as f64);
        // Reclaim the pruned-away subtrees before the retry. A *plain*
        // collection, deliberately: pressure GC already had its rung, and
        // its event must precede ours in the ladder-order telemetry.
        self.dd.garbage_collect();
        true
    }

    fn apply_dense(&mut self, op: &Operation) -> Result<(), SimError> {
        let dense = self.dense.as_mut().expect("dense mode");
        dense.apply_operation(&self.circuit, op)?;
        self.sync_dense_classical();
        Ok(())
    }

    fn sync_dense_classical(&mut self) {
        if let Some(dense) = &self.dense {
            self.classical.clear();
            self.classical.extend_from_slice(dense.classical_bits());
        }
    }

    fn set_state(&mut self, new_state: VecEdge) {
        self.dd.inc_ref_vec(new_state);
        self.dd.dec_ref_vec(self.state);
        self.state = new_state;
    }

    /// Applies one operation to the current state.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] for out-of-range classical bits or
    /// package-level failures.
    pub fn apply_operation(&mut self, op: &Operation) -> Result<(), SimError> {
        match op {
            Operation::Barrier => {}
            Operation::Gate(g) => {
                if let Some(cond) = g.condition {
                    let reg = &self.circuit.cregs()[cond.creg];
                    let value = creg_value(&self.classical, reg.offset, reg.size);
                    if value != cond.value {
                        return Ok(());
                    }
                }
                let new_state =
                    self.dd
                        .apply_gate(self.state, g.gate.matrix(), &g.controls, g.target)?;
                self.set_state(new_state);
            }
            Operation::Swap { .. } => {
                let mut s = self.state;
                for g in crate::gate_sequence(op)? {
                    s = self.dd.apply_gate(s, g.gate.matrix(), &g.controls, g.target)?;
                }
                self.set_state(s);
            }
            Operation::Measure { qubit, bit } => {
                if *bit >= self.classical.len() {
                    return Err(SimError::BitOutOfRange {
                        bit: *bit,
                        num_bits: self.classical.len(),
                    });
                }
                let (outcome, _p, new_state) =
                    self.dd.measure(self.state, *qubit, &mut self.rng)?;
                self.classical[*bit] = outcome.as_bool();
                qdd_telemetry::emit("sim.measure")
                    .field("qubit", *qubit)
                    .field("bit", *bit)
                    .field("outcome", outcome.as_bool());
                self.set_state(new_state);
            }
            Operation::Reset { qubit } => {
                let new_state = self.dd.reset(self.state, *qubit, &mut self.rng)?;
                self.set_state(new_state);
            }
        }
        Ok(())
    }

    /// Forces a specific outcome for the next measurement-like collapse —
    /// useful for scripting the paper's Fig. 8 walk-through.
    ///
    /// # Errors
    ///
    /// [`DdError::ImpossibleOutcome`](qdd_core::DdError::ImpossibleOutcome)
    /// if the outcome has probability ≈ 0.
    pub fn measure_with_outcome(
        &mut self,
        qubit: usize,
        bit: usize,
        outcome: MeasurementOutcome,
    ) -> Result<(), SimError> {
        if bit >= self.classical.len() {
            return Err(SimError::BitOutOfRange {
                bit,
                num_bits: self.classical.len(),
            });
        }
        if let Some(dense) = self.dense.as_mut() {
            let want = outcome.as_bool();
            let p = if want {
                dense.prob_one(qubit)
            } else {
                1.0 - dense.prob_one(qubit)
            };
            if p <= 1e-12 {
                return Err(SimError::Dd(DdError::ImpossibleOutcome {
                    qubit,
                    outcome: want,
                }));
            }
            dense.collapse(qubit, want);
        } else {
            let new_state = self.dd.collapse(self.state, qubit, outcome)?;
            self.set_state(new_state);
        }
        self.classical[bit] = outcome.as_bool();
        Ok(())
    }

    /// Samples `shots` basis states from the **current** state
    /// (non-destructively, paper ref \[16\]).
    ///
    /// Uniform draws always come from the simulator's seeded RNG — also
    /// after a dense degradation, so a given seed yields the same stream
    /// position regardless of which backend ended up serving the run.
    pub fn sample(&mut self, shots: u64) -> FxHashMap<u64, u64> {
        if let Some(dense) = &self.dense {
            return dense.sample_with_rng(shots, &mut self.rng);
        }
        self.dd.sample(self.state, shots, &mut self.rng)
    }

    /// The amplitude of one basis state of the current state.
    pub fn amplitude(&self, basis: u64) -> Complex {
        if let Some(dense) = &self.dense {
            return dense.state()[basis as usize];
        }
        self.dd.amplitude(self.state, basis)
    }

    /// Dense export of the current state (small registers only).
    ///
    /// # Panics
    ///
    /// Panics for registers above 24 qubits.
    pub fn dense_state(&self) -> Vec<Complex> {
        if let Some(dense) = &self.dense {
            return dense.state().to_vec();
        }
        self.dd.to_dense_vector(self.state, self.circuit.num_qubits())
    }

    /// The node count of the current state DD.
    pub fn node_count(&self) -> usize {
        self.dd.vec_node_count(self.state)
    }

    /// Runs the whole circuit once and returns `(final state, simulator)`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn simulate(circuit: QuantumCircuit, seed: u64) -> Result<DdSimulator, SimError> {
        let mut sim = Self::with_seed(circuit, seed);
        sim.run()?;
        Ok(sim)
    }

    /// Repeats the full circuit `shots` times (fresh simulator each time)
    /// and histograms each run's outcome — the serial reference
    /// implementation the shot engine
    /// ([`shots::run`](crate::shots::run)) is measured and verified
    /// against. Circuits **with** measurements histogram the final
    /// classical bits; circuits without histogram one basis-state draw from
    /// each run's final state (previously every measurement-free run was
    /// binned under classical value `0`).
    ///
    /// Shot `i` runs under [`shot_seed(seed, i)`](crate::shots::shot_seed),
    /// giving every shot a decorrelated stream (the former `seed + i`
    /// scheme made neighbouring base seeds share almost all of their
    /// shots).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn run_shots(
        circuit: &QuantumCircuit,
        shots: u64,
        seed: u64,
    ) -> Result<FxHashMap<u64, u64>, SimError> {
        let has_measurements = circuit
            .ops()
            .iter()
            .any(|op| matches!(op, Operation::Measure { .. }));
        let mut counts: FxHashMap<u64, u64> = FxHashMap::default();
        for shot in 0..shots {
            let mut sim =
                Self::with_seed(circuit.clone(), crate::shots::shot_seed(seed, shot));
            sim.run()?;
            let value = if has_measurements {
                creg_value(&sim.classical, 0, sim.classical.len())
            } else {
                sim.sample(1)
                    .into_iter()
                    .next()
                    .map(|(basis, _)| basis)
                    .unwrap_or(0)
            };
            *counts.entry(value).or_insert(0) += 1;
        }
        Ok(counts)
    }

    /// Collects garbage in the underlying package, keeping the live state.
    pub fn collect_garbage(&mut self) {
        self.dd.garbage_collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdd_circuit::library;
    use std::f64::consts::FRAC_1_SQRT_2;

    #[test]
    fn bell_state_amplitudes_match_example_5() {
        let mut sim = DdSimulator::with_seed(library::bell(), 1);
        sim.run().unwrap();
        let amps = sim.dense_state();
        assert!(amps[0].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
        assert!(amps[3].approx_eq(Complex::real(FRAC_1_SQRT_2), 1e-12));
        assert!(amps[1].approx_eq(Complex::ZERO, 1e-12));
        assert!(amps[2].approx_eq(Complex::ZERO, 1e-12));
    }

    #[test]
    fn ghz_has_linear_node_count() {
        let mut sim = DdSimulator::with_seed(library::ghz(10), 1);
        sim.run().unwrap();
        // Two disjoint chains below the root: 2n - 1 nodes (3 for Bell).
        assert_eq!(sim.node_count(), 19, "GHZ grows linearly, not exponentially");
    }

    #[test]
    fn stats_track_peak_nodes() {
        let mut sim = DdSimulator::with_seed(library::qft(4, true), 1);
        sim.run().unwrap();
        let stats = sim.stats();
        assert_eq!(stats.applied_ops, sim.circuit().len());
        assert!(stats.peak_nodes >= 4);
        assert_eq!(
            stats.peak_nodes,
            stats.nodes_per_step.iter().copied().max().unwrap()
        );
    }

    #[test]
    fn measurement_writes_classical_bits() {
        let mut qc = library::bell();
        qc.add_creg("c", 2);
        qc.measure(0, 0).measure(1, 1);
        let mut sim = DdSimulator::with_seed(qc, 5);
        sim.run().unwrap();
        let bits = sim.classical_bits();
        // Entangled: both bits agree.
        assert_eq!(bits[0], bits[1]);
    }

    #[test]
    fn forced_measurement_reproduces_fig_8() {
        let mut sim = DdSimulator::with_seed(library::bell(), 1);
        sim.run().unwrap();
        let mut qc_bits = library::bell();
        qc_bits.add_creg("c", 1);
        let mut sim = DdSimulator::with_seed(qc_bits, 1);
        sim.run().unwrap();
        sim.measure_with_outcome(0, 0, MeasurementOutcome::One).unwrap();
        let amps = sim.dense_state();
        assert!(amps[3].abs() > 0.999, "post-measurement state |11⟩");
    }

    #[test]
    fn classical_condition_controls_gate() {
        // Measure |1⟩ then conditionally flip another qubit.
        let mut qc = qdd_circuit::QuantumCircuit::new(2);
        let c = qc.add_creg("c", 1);
        qc.x(0);
        qc.measure(0, 0);
        qc.gate_if(
            qdd_circuit::StandardGate::X,
            vec![],
            1,
            qdd_circuit::Condition { creg: c, value: 1 },
        );
        let mut sim = DdSimulator::with_seed(qc, 3);
        sim.run().unwrap();
        let amps = sim.dense_state();
        assert!(amps[0b11].abs() > 0.999);
    }

    #[test]
    fn classical_condition_that_fails_is_skipped() {
        let mut qc = qdd_circuit::QuantumCircuit::new(2);
        let c = qc.add_creg("c", 1);
        qc.measure(0, 0); // records 0
        qc.gate_if(
            qdd_circuit::StandardGate::X,
            vec![],
            1,
            qdd_circuit::Condition { creg: c, value: 1 },
        );
        let mut sim = DdSimulator::with_seed(qc, 3);
        sim.run().unwrap();
        let amps = sim.dense_state();
        assert!(amps[0].abs() > 0.999, "gate must not fire");
    }

    #[test]
    fn reset_reinitializes_qubit() {
        let mut qc = qdd_circuit::QuantumCircuit::new(2);
        qc.h(0).cx(0, 1).reset(0);
        let mut sim = DdSimulator::with_seed(qc, 11);
        sim.run().unwrap();
        let state = sim.state();
        let p1 = sim.package_mut().prob_one(state, 0);
        assert!(p1 < 1e-12, "q0 is |0⟩ after reset");
    }

    #[test]
    fn swap_operation_swaps() {
        let mut qc = qdd_circuit::QuantumCircuit::new(2);
        qc.x(0).swap(0, 1);
        let mut sim = DdSimulator::with_seed(qc, 1);
        sim.run().unwrap();
        let amps = sim.dense_state();
        assert!(amps[0b10].abs() > 0.999);
    }

    #[test]
    fn run_shots_histograms_classical_outcomes() {
        let mut qc = qdd_circuit::QuantumCircuit::new(1);
        qc.add_creg("c", 1);
        qc.h(0).measure(0, 0);
        let counts = DdSimulator::run_shots(&qc, 400, 17).unwrap();
        let ones = *counts.get(&1).unwrap_or(&0) as f64;
        assert!((ones / 400.0 - 0.5).abs() < 0.1);
    }

    #[test]
    fn grover_amplifies_marked_state() {
        let marked = 5u64;
        let mut sim = DdSimulator::with_seed(library::grover(3, marked), 2);
        sim.run().unwrap();
        let amps = sim.dense_state();
        let p_marked = amps[marked as usize].norm_sqr();
        assert!(p_marked > 0.8, "marked probability {p_marked}");
    }

    #[test]
    fn bv_reveals_secret_deterministically() {
        let secret = 0b1101u64;
        let mut sim = DdSimulator::with_seed(library::bernstein_vazirani(4, secret), 3);
        sim.run().unwrap();
        // Data qubits are 1..=4; ancilla q0 holds |−⟩.
        let mut counts = sim.sample(64);
        let (basis, _) = counts.drain().max_by_key(|&(_, c)| c).unwrap();
        assert_eq!((basis >> 1) & 0b1111, secret);
    }

    /// Regression: with a coarse interning tolerance, snapping noise
    /// (≈ tolerance-sized perturbations re-entering arithmetic) used to
    /// fragment Grover diagrams beyond 13 qubits from ~2n nodes into
    /// thousands. The default tolerance must keep them compact.
    #[test]
    fn grover_16_stays_compact() {
        let n = 16;
        let mut sim = DdSimulator::with_seed(library::grover(n, (1 << n) - 1), 1);
        sim.run().unwrap();
        assert!(
            sim.stats().peak_nodes <= 4 * n,
            "peak {} nodes — interning-noise fragmentation is back",
            sim.stats().peak_nodes
        );
        let p = sim.amplitude((1 << n) - 1).norm_sqr();
        assert!(p > 0.99, "P(marked) = {p}");
    }

    /// The memoization layers (compute tables, gate-DD cache, identity
    /// skips) must be transparent: disabling them changes speed, never
    /// amplitudes.
    #[test]
    fn caches_are_transparent_to_simulation_results() {
        for qc in [
            library::qft(6, true),
            library::grover(6, 11),
            library::random_clifford_t(6, 24, 7),
        ] {
            let mut memoized = DdSimulator::with_seed(qc.clone(), 1);
            memoized.run().unwrap();
            let mut bare = DdSimulator::with_config(
                qc,
                1,
                PackageConfig {
                    compute_tables: false,
                    ..PackageConfig::default()
                },
            );
            bare.run().unwrap();
            let reference = DenseSimulator::simulate(memoized.circuit(), 1)
                .unwrap()
                .state()
                .to_vec();
            for (i, ((a, b), r)) in memoized
                .dense_state()
                .iter()
                .zip(bare.dense_state())
                .zip(reference)
                .enumerate()
            {
                assert!(
                    a.approx_eq(b, 1e-9),
                    "amplitude {i} diverges with caches off: {a:?} vs {b:?}"
                );
                assert!(
                    a.approx_eq(r, 1e-9),
                    "amplitude {i} diverges from dense backend: {a:?} vs {r:?}"
                );
            }
        }
    }

    /// A circuit whose state has no product structure: node counts grow
    /// exponentially with the register, which is exactly what the node
    /// budget exists to catch.
    fn entangling_workload(n: usize, layers: usize) -> QuantumCircuit {
        let mut qc = QuantumCircuit::new(n);
        for layer in 0..layers {
            for q in 0..n {
                qc.ry(0.37 + 0.11 * (layer * n + q) as f64, q);
            }
            for q in 0..n - 1 {
                qc.cx(q, q + 1);
            }
        }
        qc
    }

    fn limited_sim(qc: QuantumCircuit, max_nodes: usize) -> DdSimulator {
        let config = PackageConfig {
            limits: qdd_core::Limits {
                max_nodes: Some(max_nodes),
                ..qdd_core::Limits::default()
            },
            ..PackageConfig::default()
        };
        DdSimulator::with_config(qc, 1, config)
    }

    #[test]
    fn node_budget_without_fallback_is_a_hard_error() {
        let mut sim = limited_sim(entangling_workload(8, 3), 24);
        sim.set_dense_fallback(false);
        let err = sim.run().unwrap_err();
        match err {
            SimError::Dd(DdError::ResourceExhausted { limit, used, .. }) => {
                assert_eq!(limit, 24);
                assert!(used >= limit);
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        assert!(
            sim.stats().gc_pressure_runs > 0,
            "pressure GC must have been attempted before giving up"
        );
        assert!(!sim.degraded_to_dense());
    }

    #[test]
    fn node_budget_degrades_to_dense_and_matches_unlimited_run() {
        let qc = entangling_workload(8, 3);
        let mut reference = DdSimulator::with_seed(qc.clone(), 1);
        reference.run().unwrap();
        let expected = reference.dense_state();

        let mut sim = limited_sim(qc, 24);
        sim.run().unwrap();
        assert!(sim.degraded_to_dense());
        assert!(sim.stats().dense_fallback);
        assert!(sim.stats().gc_pressure_runs > 0);
        let got = sim.dense_state();
        for (a, b) in expected.iter().zip(got.iter()) {
            assert!(a.approx_eq(*b, 1e-9), "dense fallback diverged: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn dense_mode_serves_sampling_and_measurement() {
        let mut qc = entangling_workload(6, 3);
        qc.add_creg("c", 1);
        let mut sim = limited_sim(qc, 16);
        sim.run().unwrap();
        assert!(sim.degraded_to_dense());
        let counts = sim.sample(64);
        assert_eq!(counts.values().sum::<u64>(), 64);
        sim.measure_with_outcome(0, 0, MeasurementOutcome::Zero)
            .unwrap();
        let p1: f64 = sim
            .dense_state()
            .iter()
            .enumerate()
            .filter(|(i, _)| i & 1 != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        assert!(p1 < 1e-12, "collapse onto |0⟩ must zero the |1⟩ branch");
    }

    fn approx_sim(qc: QuantumCircuit, max_nodes: usize, min_fidelity: f64) -> DdSimulator {
        let config = PackageConfig {
            limits: qdd_core::Limits {
                max_nodes: Some(max_nodes),
                min_fidelity: Some(min_fidelity),
                ..qdd_core::Limits::default()
            },
            ..PackageConfig::default()
        };
        DdSimulator::with_config(qc, 1, config)
    }

    #[test]
    fn approximation_rung_completes_within_budget_and_bound() {
        let mut sim = approx_sim(entangling_workload(8, 3), 160, 0.5);
        sim.set_dense_fallback(false);
        sim.run().unwrap();
        let stats = sim.stats();
        assert!(stats.is_approximate(), "the rung must have fired: {stats:?}");
        assert!(stats.approx_rounds > 0);
        assert!(stats.approx_nodes_removed > 0);
        assert!(
            stats.fidelity_lower_bound >= 0.5 && stats.fidelity_lower_bound < 1.0,
            "cumulative bound {} outside [0.5, 1)",
            stats.fidelity_lower_bound
        );
        assert!(!sim.degraded_to_dense(), "approximation must suffice here");
        // The approximated run respects the budget and stays normalized.
        assert!(sim.node_count() <= 160);
        let norm: f64 = sim.dense_state().iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-9, "state norm {norm}");
        // The bound is honest: the approximate state's overlap with the
        // exact run is at least the reported bound.
        let mut exact = DdSimulator::with_seed(entangling_workload(8, 3), 1);
        exact.run().unwrap();
        let overlap: Complex = exact
            .dense_state()
            .iter()
            .zip(sim.dense_state())
            .map(|(a, b)| a.conj() * b)
            .sum();
        assert!(
            overlap.norm_sqr() >= stats.fidelity_lower_bound - 1e-9,
            "actual fidelity {} below reported bound {}",
            overlap.norm_sqr(),
            stats.fidelity_lower_bound
        );
    }

    #[test]
    fn approximation_precedes_dense_fallback() {
        // A budget so tight that even halved diagrams keep starving: the
        // ladder must spend its fidelity budget and then continue densely.
        let mut sim = approx_sim(entangling_workload(8, 3), 12, 0.999_999);
        sim.run().unwrap();
        assert!(sim.degraded_to_dense(), "approx alone cannot satisfy 12 nodes");
        assert!(
            sim.stats().fidelity_lower_bound >= 0.999_999,
            "rejected rounds must not spend fidelity: {}",
            sim.stats().fidelity_lower_bound
        );
    }

    #[test]
    fn without_min_fidelity_ladder_is_unchanged() {
        let mut sim = limited_sim(entangling_workload(8, 3), 24);
        sim.run().unwrap();
        assert!(sim.degraded_to_dense());
        let stats = sim.stats();
        assert_eq!(stats.approx_rounds, 0);
        assert_eq!(stats.fidelity_lower_bound, 1.0);
        assert!(!stats.is_approximate());
    }

    #[test]
    fn restart_resets_fidelity_account() {
        let mut sim = approx_sim(entangling_workload(8, 3), 160, 0.5);
        sim.set_dense_fallback(false);
        sim.run().unwrap();
        assert!(sim.stats().fidelity_lower_bound < 1.0);
        sim.restart(2).unwrap();
        assert_eq!(sim.stats().fidelity_lower_bound, 1.0);
        assert_eq!(sim.stats().approx_rounds, 0);
    }

    #[test]
    fn threshold_policy_also_degrades_gracefully() {
        let config = PackageConfig {
            limits: qdd_core::Limits {
                max_nodes: Some(24),
                min_fidelity: Some(0.5),
                approx_policy: qdd_core::ApproxPolicy::Threshold { epsilon: 1e-3 },
                ..qdd_core::Limits::default()
            },
            ..PackageConfig::default()
        };
        let mut sim = DdSimulator::with_config(entangling_workload(8, 3), 1, config);
        let outcome = sim.run();
        // Threshold contraction may or may not shrink enough on its own;
        // either way the run must complete (dense rung backs it up) with a
        // consistent fidelity account.
        outcome.unwrap();
        let stats = sim.stats();
        assert!(stats.fidelity_lower_bound >= 0.5);
        assert!(stats.fidelity_lower_bound <= 1.0);
    }

    #[test]
    fn deadline_zero_fires_immediately() {
        let config = PackageConfig {
            limits: qdd_core::Limits {
                deadline: Some(std::time::Duration::ZERO),
                ..qdd_core::Limits::default()
            },
            ..PackageConfig::default()
        };
        let mut sim = DdSimulator::with_config(library::qft(6, true), 1, config);
        let err = sim.run().unwrap_err();
        assert!(matches!(err, SimError::Dd(DdError::DeadlineExceeded { .. })));
    }

    #[test]
    fn gc_keeps_live_state() {
        let mut sim = DdSimulator::with_seed(library::qft(5, true), 1);
        sim.run().unwrap();
        let before = sim.dense_state();
        sim.collect_garbage();
        let after = sim.dense_state();
        for (a, b) in before.iter().zip(after.iter()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }
}

