//! Integration tests of the shot engine: correctness of the regime
//! dispatch, statistical agreement of the fast paths with per-shot
//! re-execution, and thread-count invariance of the mid-circuit path.

use qdd_circuit::{library, MeasurementRegime, QuantumCircuit};
use qdd_complex::FxHashMap;
use qdd_core::{DdError, Limits, PackageConfig};
use qdd_sim::shots::{self, HistogramKind, ShotOptions};
use qdd_sim::{DdSimulator, SimError};

/// Teleportation with deferred (quantum-controlled) corrections: same
/// outcome distribution as [`library::teleportation`], but every
/// measurement is terminal — the circuit the terminal fast path must agree
/// with per-shot re-execution on.
fn deferred_teleportation(theta: f64) -> QuantumCircuit {
    let mut qc = QuantumCircuit::new(3);
    qc.add_creg("m", 3);
    qc.ry(theta, 0); // payload state on q0
    qc.h(1).cx(1, 2); // Bell pair q1–q2
    qc.cx(0, 1).h(0); // Bell-basis change
    qc.cx(1, 2).cz(0, 2); // corrections, deferred past the measurements
    qc.measure(0, 0).measure(1, 1).measure(2, 2);
    qc
}

/// Two-sample χ² statistic between histograms (both keyed by outcome).
fn chi_square(a: &FxHashMap<u64, u64>, b: &FxHashMap<u64, u64>) -> f64 {
    let n: u64 = a.values().sum();
    let m: u64 = b.values().sum();
    let (kn, km) = ((m as f64 / n as f64).sqrt(), (n as f64 / m as f64).sqrt());
    let keys: std::collections::BTreeSet<u64> = a.keys().chain(b.keys()).copied().collect();
    keys.iter()
        .map(|k| {
            let (x, y) = (
                *a.get(k).unwrap_or(&0) as f64,
                *b.get(k).unwrap_or(&0) as f64,
            );
            (x * kn - y * km).powi(2) / (x + y)
        })
        .sum()
}

#[test]
fn no_measurement_regime_samples_final_state() {
    let report = shots::run(&library::ghz(4), &ShotOptions::new(4000, 7)).unwrap();
    assert_eq!(report.regime, MeasurementRegime::NoMeasurement);
    assert_eq!(report.kind, HistogramKind::BasisStates);
    assert_eq!(report.threads_used, 1);
    assert_eq!(report.histogram.values().sum::<u64>(), 4000);
    assert!(report.histogram.keys().all(|&k| k == 0 || k == 0b1111));
    let zeros = *report.histogram.get(&0).unwrap_or(&0) as f64;
    assert!((zeros / 4000.0 - 0.5).abs() < 0.05);
}

#[test]
fn terminal_regime_reads_bits_off_samples() {
    let mut qc = library::ghz(3);
    qc.measure_all();
    let report = shots::run(&qc, &ShotOptions::new(3000, 11)).unwrap();
    assert_eq!(report.regime, MeasurementRegime::TerminalMeasurement);
    assert_eq!(report.kind, HistogramKind::ClassicalBits);
    assert!(report.histogram.keys().all(|&k| k == 0 || k == 0b111));
    assert_eq!(report.histogram.values().sum::<u64>(), 3000);
}

#[test]
fn terminal_fast_path_agrees_with_per_shot_reexecution() {
    // χ²-style agreement on a teleportation-style circuit: the fast path
    // (one prefix run + memoized path sampling + bit mapping) and honest
    // per-shot re-execution must draw from the same distribution.
    let qc = deferred_teleportation(1.1);
    assert_eq!(qc.measurement_regime(), MeasurementRegime::TerminalMeasurement);
    let fast = shots::run(&qc, &ShotOptions::new(6000, 5)).unwrap();
    let reference = DdSimulator::run_shots(&qc, 6000, 1234).unwrap();
    // 8 outcomes → 7 degrees of freedom; χ² < 24.3 keeps p > 0.001.
    let x2 = chi_square(&fast.histogram, &reference);
    assert!(x2 < 24.3, "χ² = {x2} — fast path diverges from re-execution");
    // And against the mid-circuit engine on the *classically controlled*
    // teleportation (payload lands on q0; measure it into a third bit):
    // same payload, same marginal.
    let mut mid_qc = library::teleportation(1.1);
    mid_qc.add_creg("out", 1);
    mid_qc.measure(0, 2);
    let mid = shots::run(&mid_qc, &ShotOptions::new(6000, 9)).unwrap();
    let marginal = |h: &FxHashMap<u64, u64>| -> f64 {
        let ones: u64 = h.iter().filter(|(k, _)| *k >> 2 & 1 == 1).map(|(_, c)| c).sum();
        ones as f64 / h.values().sum::<u64>() as f64
    };
    let expected = (1.1f64 / 2.0).sin().powi(2);
    assert!((marginal(&fast.histogram) - expected).abs() < 0.03);
    assert!((marginal(&mid.histogram) - expected).abs() < 0.03);
}

#[test]
fn mid_circuit_engine_matches_run_shots_bit_for_bit() {
    // Same per-shot seeds ⇒ the engine (batched, restart-reused simulators)
    // must reproduce the serial reference exactly, not just statistically.
    let qc = library::teleportation(0.7);
    assert_eq!(qc.measurement_regime(), MeasurementRegime::MidCircuit);
    let reference = DdSimulator::run_shots(&qc, 500, 42).unwrap();
    let mut opts = ShotOptions::new(500, 42);
    opts.threads = 1;
    let report = shots::run(&qc, &opts).unwrap();
    assert_eq!(report.regime, MeasurementRegime::MidCircuit);
    assert_eq!(report.kind, HistogramKind::ClassicalBits);
    assert_eq!(report.histogram, reference);
}

#[test]
fn mid_circuit_histograms_are_thread_count_invariant() {
    // Per-shot seed derivation makes the merged histogram a pure function
    // of (base seed, shot count) — any worker partition, same bits.
    let qc = library::teleportation(0.4);
    let single = {
        let mut o = ShotOptions::new(600, 99);
        o.threads = 1;
        shots::run(&qc, &o).unwrap()
    };
    for threads in [2, 3, 8] {
        let mut o = ShotOptions::new(600, 99);
        o.threads = threads;
        let multi = shots::run(&qc, &o).unwrap();
        assert_eq!(
            multi.histogram, single.histogram,
            "{threads}-thread histogram differs from 1-thread"
        );
        assert_eq!(multi.threads_used, threads);
        assert_eq!(multi.worker_shots.iter().sum::<u64>(), 600);
    }
}

#[test]
fn reset_only_circuits_histogram_basis_states() {
    // Mid-circuit regime without measurements (reset feedback): shots must
    // histogram final basis states, not collapse to classical value 0.
    let mut qc = QuantumCircuit::new(2);
    qc.h(0).reset(0).h(1);
    assert_eq!(qc.measurement_regime(), MeasurementRegime::MidCircuit);
    let mut opts = ShotOptions::new(800, 21);
    opts.threads = 2;
    let report = shots::run(&qc, &opts).unwrap();
    assert_eq!(report.kind, HistogramKind::BasisStates);
    // q0 always reset to |0⟩, q1 uniform: outcomes 0b00 and 0b10 only.
    assert!(report.histogram.keys().all(|&k| k == 0b00 || k == 0b10));
    let ones = *report.histogram.get(&0b10).unwrap_or(&0) as f64;
    assert!((ones / 800.0 - 0.5).abs() < 0.06);
    // And it matches the serial reference bit-for-bit.
    let reference = DdSimulator::run_shots(&qc, 800, 21).unwrap();
    assert_eq!(report.histogram, reference);
}

#[test]
fn run_shots_no_longer_bins_unmeasured_circuits_to_zero() {
    // Regression for the histogramming bug: a measurement-free circuit used
    // to have every shot counted under classical value 0.
    let counts = DdSimulator::run_shots(&library::ghz(2), 200, 3).unwrap();
    assert!(counts.len() > 1, "all shots binned together: {counts:?}");
    assert!(counts.keys().all(|&k| k == 0b00 || k == 0b11));
}

#[test]
fn shot_streams_are_decorrelated_across_base_seeds() {
    // Regression for the seed.wrapping_add(shot) bug: runs under base seeds
    // s and s+1 used to share all but one of their per-shot streams. Now
    // the overlap of drawn outcomes sequences must look independent.
    let mut qc = QuantumCircuit::new(1);
    qc.add_creg("c", 1);
    qc.h(0).measure(0, 0).gate_if(
        qdd_circuit::StandardGate::X,
        vec![],
        0,
        qdd_circuit::Condition { creg: 0, value: 1 },
    );
    let a = DdSimulator::run_shots(&qc, 400, 50).unwrap();
    let b = DdSimulator::run_shots(&qc, 400, 51).unwrap();
    // Both fair-coin histograms; equality of full 400-draw sequences would
    // be astronomically unlikely under independence *per-shot*, but counts
    // are coarse — so check the underlying seeds directly too.
    let shared = (0..400)
        .filter(|&i| shots::shot_seed(50, i) == shots::shot_seed(51, i))
        .count();
    assert_eq!(shared, 0, "adjacent base seeds share per-shot seeds");
    assert!((a.values().sum::<u64>(), b.values().sum::<u64>()) == (400, 400));
}

#[test]
fn deadline_propagates_through_the_engine() {
    let config = PackageConfig {
        limits: Limits {
            deadline: Some(std::time::Duration::ZERO),
            ..Limits::default()
        },
        ..PackageConfig::default()
    };
    let mut opts = ShotOptions::new(100, 1);
    opts.config = config;
    opts.threads = 2;
    let err = shots::run(&library::teleportation(0.3), &opts).unwrap_err();
    assert!(matches!(err, SimError::Dd(DdError::DeadlineExceeded { .. })));
}

#[test]
fn node_budget_error_propagates_without_fallback() {
    let config = PackageConfig {
        limits: Limits {
            max_nodes: Some(8),
            ..Limits::default()
        },
        ..PackageConfig::default()
    };
    let mut opts = ShotOptions::new(50, 1);
    opts.config = config;
    opts.dense_fallback = false;
    let err = shots::run(&library::qft(8, true), &opts).unwrap_err();
    assert!(matches!(err, SimError::Dd(DdError::ResourceExhausted { .. })));
}

#[test]
fn worker_panic_is_contained_at_every_thread_count() {
    // Regression for the `h.join().expect("shot worker panicked")` abort: a
    // panicking worker must surface as a typed error, not kill the process.
    let qc = library::teleportation(0.5);
    for threads in [1, 2, 4, 8] {
        let mut opts = ShotOptions::new(64, 3);
        opts.threads = threads;
        opts.panic_at_shot = Some(40);
        let err = shots::run(&qc, &opts).unwrap_err();
        match err {
            SimError::WorkerPanicked { payload, .. } => {
                assert!(
                    payload.contains("forced panic at shot 40"),
                    "payload not propagated at {threads} threads: {payload}"
                );
            }
            other => panic!("expected WorkerPanicked at {threads} threads, got {other:?}"),
        }
    }
}

#[test]
fn worker_panic_keeps_published_telemetry_mergeable() {
    // Surviving workers publish their partial metrics before exiting; a
    // panic in one worker must not discard them.
    qdd_telemetry::set_scope(qdd_telemetry::next_scope_id());
    qdd_telemetry::set_enabled(true);
    qdd_telemetry::reset();
    let qc = library::teleportation(0.5);
    let mut opts = ShotOptions::new(64, 3);
    opts.threads = 4;
    opts.panic_at_shot = Some(1); // worker 0 dies almost immediately
    let err = shots::run(&qc, &opts).unwrap_err();
    assert!(matches!(err, SimError::WorkerPanicked { .. }));
    let snap = qdd_telemetry::take_merged_snapshot();
    qdd_telemetry::set_enabled(false);
    qdd_telemetry::set_scope(0);
    // The coordinator's own span is always there; at least it must have
    // merged cleanly instead of poisoning the registry.
    assert!(snap.span_stats("shots.engine").is_some());
}

#[test]
fn external_cancel_stops_the_job_early() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    // The dropped-connection path: a server flips the cooperative cancel
    // flag and the engine returns Cancelled at the next shot boundary — the
    // `shots.engine` span ends early instead of burning through the job.
    qdd_telemetry::set_scope(qdd_telemetry::next_scope_id());
    qdd_telemetry::set_enabled(true);
    qdd_telemetry::reset();
    let qc = library::teleportation(0.8);
    let flag = Arc::new(AtomicBool::new(false));
    let mut opts = ShotOptions::new(50_000_000, 5);
    opts.threads = 2;
    opts.cancel = Some(flag.clone());
    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(50));
        flag.store(true, Ordering::Relaxed);
    });
    let t0 = std::time::Instant::now();
    let err = shots::run(&qc, &opts).unwrap_err();
    let elapsed = t0.elapsed();
    killer.join().unwrap();
    assert_eq!(err, SimError::Cancelled);
    // 50M teleportation shots take minutes; cancellation must cut that to
    // roughly the flag delay.
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "cancel did not stop the job promptly ({elapsed:?})"
    );
    let snap = qdd_telemetry::take_merged_snapshot();
    qdd_telemetry::set_enabled(false);
    qdd_telemetry::set_scope(0);
    let span = snap.span_stats("shots.engine").expect("span recorded");
    assert_eq!(span.count, 1);
    // The span ended early: its wall time is nowhere near a full 50M-shot
    // job (which would be minutes even on fast hardware).
    assert!(span.total_ns < 30_000_000_000, "span ran too long: {}ns", span.total_ns);
}

#[test]
fn already_cancelled_job_never_starts() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    let mut opts = ShotOptions::new(100, 1);
    opts.cancel = Some(Arc::new(AtomicBool::new(true)));
    let err = shots::run(&library::teleportation(0.2), &opts).unwrap_err();
    assert_eq!(err, SimError::Cancelled);
}

#[test]
fn warm_base_injection_preserves_histograms_and_skips_construction() {
    // A server-cached warm base must change cache accounting only — the
    // histogram stays bit-identical, and the injected job records no
    // construction lookups, so its hit rate is strictly higher.
    let qc = library::teleportation(0.6);
    let cold = shots::run(&qc, &ShotOptions::new(400, 8)).unwrap();
    let warm_base = shots::build_warm_base(&qc, PackageConfig::default()).unwrap();
    let mut opts = ShotOptions::new(400, 8);
    opts.warm_base = Some(warm_base.frozen.clone());
    let warm = shots::run(&qc, &opts).unwrap();
    assert_eq!(warm.histogram, cold.histogram);
    assert!(warm.gate_cache_lookups < cold.gate_cache_lookups);
    assert!(
        warm.gate_cache_hit_rate() > cold.gate_cache_hit_rate(),
        "warm {} ≤ cold {}",
        warm.gate_cache_hit_rate(),
        cold.gate_cache_hit_rate()
    );
}

#[test]
fn dense_degraded_fast_path_is_seed_deterministic() {
    // Under a tight node budget the fast path degrades to the dense
    // backend; sampling must still come from the engine's seeded stream,
    // so identical options ⇒ identical histograms.
    let config = PackageConfig {
        limits: Limits {
            max_nodes: Some(16),
            ..Limits::default()
        },
        ..PackageConfig::default()
    };
    let mut qc = QuantumCircuit::new(6);
    for layer in 0..3 {
        for q in 0..6 {
            qc.ry(0.37 + 0.11 * (layer * 6 + q) as f64, q);
        }
        for q in 0..5 {
            qc.cx(q, q + 1);
        }
    }
    let mut opts = ShotOptions::new(400, 13);
    opts.config = config;
    let a = shots::run(&qc, &opts).unwrap();
    let b = shots::run(&qc, &opts).unwrap();
    assert_eq!(a.histogram, b.histogram);
    assert_eq!(a.histogram.values().sum::<u64>(), 400);
}
