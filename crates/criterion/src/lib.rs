//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so the workspace vendors the
//! small slice of criterion's API its benches use. Unlike a pure no-op stub,
//! this shim actually times the benchmark closures (warm-up, iteration-count
//! calibration, median of several samples) and prints one line per benchmark,
//! so `cargo bench` remains useful for coarse regression spotting. It does
//! not do criterion's statistical analysis, outlier rejection, or HTML
//! reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Target measurement time per benchmark sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(200);
/// Samples per benchmark; the median is reported.
const SAMPLES: usize = 5;

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Run `f` repeatedly and record its median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that fills the
        // sample budget, starting from a single timed call.
        let start = Instant::now();
        black_box(f());
        let one = start.elapsed().max(Duration::from_nanos(1));
        let iters = (SAMPLE_BUDGET.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[SAMPLES / 2];
    }
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { ns_per_iter: 0.0 };
    f(&mut b);
    println!("{label:<60} {:>12}/iter", human_ns(b.ns_per_iter));
}

/// Identifier for a parameterized benchmark (`name/parameter`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { full: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { full: parameter.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the shim's fixed sample count is
    /// already small.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.full), &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { name }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Accepted for API compatibility with `criterion_main!`'s expansion.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Expands to a function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `fn main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| black_box(1 + 1));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("mat_vec", 12);
        assert_eq!(id.full, "mat_vec/12");
    }
}
